//! OSPF: link-state shortest-path-first routing with ECMP.
//!
//! Semantics (matching what ConfMask's algorithms rely on, §5.1/§5.2):
//!
//! * Adjacency requires OSPF to be active (covered by a `network` statement)
//!   on **both** ends of a link.
//! * The cost of a path is the sum of *outgoing* interface costs, plus the
//!   advertising router's LAN-interface cost (Cisco semantics).
//! * A `distribute-list ... in <iface>` does **not** change the link-state
//!   computation (LSAs flood regardless); it only removes candidate
//!   next-hops through that interface at RIB-installation time. Filtering
//!   an equal-cost candidate therefore leaves the other candidates intact —
//!   this is exactly the "equal-cost fake edge is rejected" behaviour of the
//!   link-state SFE conditions.

use crate::network::{Peer, SimNetwork};
use confmask_net_types::{Ipv4Prefix, RouterId};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// Per-router candidate next-hops per destination prefix:
/// `routes[r][prefix] = [(out_iface, neighbor_router), ...]` (ECMP set,
/// already filtered).
pub type IgpRoutes = Vec<BTreeMap<Ipv4Prefix, Vec<(usize, RouterId)>>>;

/// Converged per-prefix distance vectors: `dist[prefix][router]` is the
/// cost from the router to the prefix (`u64::MAX` = unreachable). Prefixes
/// with no advertiser are absent. The incremental engine keeps these to
/// decide whether a failed edge lies on any shortest-path DAG.
pub type OspfDist = BTreeMap<Ipv4Prefix, Vec<u64>>;

/// Directed OSPF adjacency: for each router, `(iface_idx, neighbor,
/// neighbor_iface, cost_of_our_iface)`.
fn adjacency(net: &SimNetwork) -> Vec<Vec<(usize, RouterId, usize, u32)>> {
    let mut adj = vec![Vec::new(); net.router_count()];
    for (rid, r) in net.routers_iter() {
        for (ii, iface) in r.ifaces.iter().enumerate() {
            if !iface.ospf_active {
                continue;
            }
            for peer in &iface.peers {
                if let Peer::Router { router, iface: pi } = peer {
                    if net.router(*router).ifaces[*pi].ospf_active {
                        adj[rid.0 as usize].push((ii, *router, *pi, iface.cost));
                    }
                }
            }
        }
    }
    adj
}

/// Computes OSPF candidate next-hops for every (router, host-LAN prefix).
///
/// Destination prefixes are independent, so the per-prefix multi-source
/// Dijkstras fan out over scoped threads on larger networks.
pub fn compute(net: &SimNetwork) -> IgpRoutes {
    compute_subset(net, &net.destinations).0
}

/// Computes OSPF candidate next-hops plus the converged per-prefix distance
/// vectors for every destination (the state the incremental engine caches).
pub fn compute_with_state(net: &SimNetwork) -> (IgpRoutes, OspfDist) {
    compute_subset(net, &net.destinations)
}

/// Computes OSPF candidate next-hops and distances for a *subset* of
/// destination prefixes. The incremental engine calls this with only the
/// prefixes whose shortest-path DAGs a failure touched; per-prefix results
/// are independent, so the output for a subset is byte-identical to the
/// corresponding slice of a full [`compute_with_state`] run.
#[allow(clippy::type_complexity)]
pub fn compute_subset(
    net: &SimNetwork,
    destinations: &[(Ipv4Prefix, Vec<confmask_net_types::HostId>)],
) -> (IgpRoutes, OspfDist) {
    // One multi-source Dijkstra per destination prefix (counted here, not in
    // `compute_for`, so the tally is independent of the thread fan-out).
    confmask_obs::counter_add("sim.ospf.spf_runs", destinations.len() as u64);
    let adj = adjacency(net);
    let n = net.router_count();

    // Reverse adjacency for the multi-source Dijkstra toward a prefix:
    // rev[v] = [(u, cost(u→v))] for each forward edge u→v.
    let mut rev: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n];
    for (u, edges) in adj.iter().enumerate() {
        for &(_ii, v, _pi, cost) in edges {
            rev[v.0 as usize].push((u, cost));
        }
    }

    // Per-prefix SPFs are independent: fan out over the shared executor
    // (dynamic chunk claiming, no static split, no hard-coded worker cap)
    // and merge by destination index, so the result is byte-identical to a
    // sequential run at any worker count. Small subsets stay inline — the
    // delta engine calls this with a handful of touched prefixes per
    // scenario and the spawn cost would dominate.
    let per_prefix: Vec<PrefixSpf> = if destinations.len() >= 32 {
        confmask_exec::par_map(destinations, |(prefix, _)| compute_one(net, &adj, &rev, prefix))
    } else {
        destinations
            .iter()
            .map(|(prefix, _)| compute_one(net, &adj, &rev, prefix))
            .collect()
    };

    let mut routes: IgpRoutes = vec![BTreeMap::new(); n];
    let mut dists = OspfDist::new();
    for ((prefix, _hosts), spf) in destinations.iter().zip(per_prefix) {
        let Some((hops_by_router, dist)) = spf else {
            continue;
        };
        for (u, hops) in hops_by_router {
            routes[u].insert(*prefix, hops);
        }
        dists.insert(*prefix, dist);
    }
    (routes, dists)
}

/// One prefix's SPF result: per-router candidate hops plus the distance
/// vector, or `None` when the prefix has no advertiser.
type PrefixSpf = Option<(Vec<(usize, Vec<(usize, RouterId)>)>, Vec<u64>)>;

/// The multi-source Dijkstra for a single destination prefix.
fn compute_one(
    net: &SimNetwork,
    adj: &[Vec<(usize, RouterId, usize, u32)>],
    rev: &[Vec<(usize, u32)>],
    prefix: &Ipv4Prefix,
) -> PrefixSpf {
    let n = net.router_count();
    // Advertisers: routers with an OSPF-active interface exactly on the
    // prefix; seed cost is that interface's cost.
    let mut dist = vec![u64::MAX; n];
    let mut heap = BinaryHeap::new();
    for (rid, r) in net.routers_iter() {
        for iface in &r.ifaces {
            if iface.ospf_active && iface.prefix == *prefix {
                let seed = u64::from(iface.cost);
                if seed < dist[rid.0 as usize] {
                    dist[rid.0 as usize] = seed;
                    heap.push(Reverse((seed, rid.0 as usize)));
                }
            }
        }
    }
    if heap.is_empty() {
        return None;
    }
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v] {
            continue;
        }
        for &(u, cost) in &rev[v] {
            let nd = d.saturating_add(u64::from(cost));
            if nd < dist[u] {
                dist[u] = nd;
                heap.push(Reverse((nd, u)));
            }
        }
    }

    // Candidate next-hops: equal-cost first edges, minus filtered ones.
    let mut hops_by_router = Vec::new();
    for (rid, r) in net.routers_iter() {
        let u = rid.0 as usize;
        if dist[u] == u64::MAX {
            continue;
        }
        // Advertisers use their connected route; skip.
        if r.ifaces.iter().any(|i| i.prefix == *prefix) {
            continue;
        }
        let mut hops = Vec::new();
        for &(ii, v, _pi, cost) in &adj[u] {
            let dv = dist[v.0 as usize];
            if dv == u64::MAX {
                continue;
            }
            if u64::from(cost).saturating_add(dv) == dist[u] && !r.ifaces[ii].igp_denies(prefix) {
                hops.push((ii, v));
            }
        }
        if !hops.is_empty() {
            hops.sort();
            hops.dedup();
            hops_by_router.push((u, hops));
        }
    }
    Some((hops_by_router, dist))
}

/// Router-to-router IGP shortest paths (used for iBGP egress resolution).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterPaths {
    /// `dist[a][b]` = IGP cost from router `a` to router `b`
    /// (`u64::MAX` = unreachable).
    pub dist: Vec<Vec<u64>>,
    /// `next_hops[a][b]` = ECMP first hops `(iface, neighbor)` from `a`
    /// toward `b`.
    pub next_hops: Vec<Vec<Vec<(usize, RouterId)>>>,
}

/// Computes router-to-router IGP paths over intra-AS IGP adjacencies.
///
/// OSPF adjacencies are used when present; RIP adjacencies (hop cost 1) are
/// included for RIP-only networks. Links crossing AS boundaries are excluded
/// — inter-AS reachability is BGP's job.
pub fn router_paths(net: &SimNetwork) -> RouterPaths {
    let n = net.router_count();
    confmask_obs::counter_add("sim.ospf.spf_runs", n as u64);
    // Build a combined IGP adjacency.
    let mut adj: Vec<Vec<(usize, RouterId, u32)>> = vec![Vec::new(); n];
    for (rid, r) in net.routers_iter() {
        for (ii, iface) in r.ifaces.iter().enumerate() {
            for peer in &iface.peers {
                let Peer::Router { router, iface: pi } = peer else {
                    continue;
                };
                let peer_iface = &net.router(*router).ifaces[*pi];
                // Same-AS requirement (None == None counts as same).
                if r.asn != net.router(*router).asn {
                    continue;
                }
                let ospf = iface.ospf_active && peer_iface.ospf_active;
                let rip = iface.rip_active && peer_iface.rip_active;
                if ospf {
                    adj[rid.0 as usize].push((ii, *router, iface.cost));
                } else if rip {
                    adj[rid.0 as usize].push((ii, *router, 1));
                }
            }
        }
    }

    let mut dist = vec![vec![u64::MAX; n]; n];
    let mut next_hops = vec![vec![Vec::new(); n]; n];
    for src in 0..n {
        let d = &mut dist[src];
        d[src] = 0;
        let mut heap = BinaryHeap::new();
        heap.push(Reverse((0u64, src)));
        while let Some(Reverse((du, u))) = heap.pop() {
            if du > d[u] {
                continue;
            }
            for &(_ii, v, cost) in &adj[u] {
                let nd = du.saturating_add(u64::from(cost));
                if nd < d[v.0 as usize] {
                    d[v.0 as usize] = nd;
                    heap.push(Reverse((nd, v.0 as usize)));
                }
            }
        }
        // First hops: neighbor v of src with cost(src→v) + dist[v→dst] == dist[src→dst].
        // Requires dist from each neighbor; compute after all Dijkstras.
    }
    // Second pass for first hops now that all dist rows exist.
    for src in 0..n {
        for dst in 0..n {
            if src == dst || dist[src][dst] == u64::MAX {
                continue;
            }
            let mut hops = Vec::new();
            for &(ii, v, cost) in &adj[src] {
                let via = u64::from(cost).saturating_add(dist[v.0 as usize][dst]);
                if via == dist[src][dst] {
                    hops.push((ii, v));
                }
            }
            hops.sort();
            hops.dedup();
            next_hops[src][dst] = hops;
        }
    }

    RouterPaths { dist, next_hops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confmask_config::{parse_router, HostConfig, NetworkConfigs};

    /// Diamond: r1 —(1)— r2 —(1)— r4 and r1 —(10)— r3 —(10)— r4,
    /// host LANs on r1 and r4.
    fn diamond() -> NetworkConfigs {
        let r1 = parse_router(
            "hostname r1\n!\ninterface Ethernet0/0\n ip address 10.0.12.0 255.255.255.254\n ip ospf cost 1\n!\ninterface Ethernet0/1\n ip address 10.0.13.0 255.255.255.254\n!\ninterface Ethernet0/2\n ip address 10.1.1.1 255.255.255.0\n!\nrouter ospf 1\n network 0.0.0.0 255.255.255.255 area 0\n!\n",
        )
        .unwrap();
        let r2 = parse_router(
            "hostname r2\n!\ninterface Ethernet0/0\n ip address 10.0.12.1 255.255.255.254\n ip ospf cost 1\n!\ninterface Ethernet0/1\n ip address 10.0.24.0 255.255.255.254\n ip ospf cost 1\n!\nrouter ospf 1\n network 0.0.0.0 255.255.255.255 area 0\n!\n",
        )
        .unwrap();
        let r3 = parse_router(
            "hostname r3\n!\ninterface Ethernet0/0\n ip address 10.0.13.1 255.255.255.254\n!\ninterface Ethernet0/1\n ip address 10.0.34.0 255.255.255.254\n!\nrouter ospf 1\n network 0.0.0.0 255.255.255.255 area 0\n!\n",
        )
        .unwrap();
        let r4 = parse_router(
            "hostname r4\n!\ninterface Ethernet0/0\n ip address 10.0.24.1 255.255.255.254\n ip ospf cost 1\n!\ninterface Ethernet0/1\n ip address 10.0.34.1 255.255.255.254\n!\ninterface Ethernet0/2\n ip address 10.1.4.1 255.255.255.0\n!\nrouter ospf 1\n network 0.0.0.0 255.255.255.255 area 0\n!\n",
        )
        .unwrap();
        let h1 = HostConfig {
            hostname: "h1".into(),
            iface_name: "eth0".into(),
            address: ("10.1.1.100".parse().unwrap(), 24),
            gateway: "10.1.1.1".parse().unwrap(),
            extra: vec![],
            added: false,
        };
        let h4 = HostConfig {
            hostname: "h4".into(),
            iface_name: "eth0".into(),
            address: ("10.1.4.100".parse().unwrap(), 24),
            gateway: "10.1.4.1".parse().unwrap(),
            extra: vec![],
            added: false,
        };
        NetworkConfigs::new([r1, r2, r3, r4], [h1, h4])
    }

    #[test]
    fn picks_cheapest_path() {
        let net = SimNetwork::build(&diamond()).unwrap();
        let routes = compute(&net);
        let r1 = net.router_id("r1").unwrap();
        let r2 = net.router_id("r2").unwrap();
        let lan4: Ipv4Prefix = "10.1.4.0/24".parse().unwrap();
        let hops = &routes[r1.0 as usize][&lan4];
        assert_eq!(hops.len(), 1);
        assert_eq!(hops[0].1, r2);
    }

    #[test]
    fn equal_costs_give_ecmp() {
        // Raise the cheap path's cost so both sides cost the same:
        // r1→r2→r4 costs 1+1, r1→r3→r4 costs 10+10; set r1→r2 to 19? No —
        // instead drop explicit costs so every hop costs the default 10.
        let mut cfgs = diamond();
        for rc in cfgs.routers.values_mut() {
            for i in rc.interfaces.iter_mut() {
                i.ospf_cost = None;
            }
        }
        let net = SimNetwork::build(&cfgs).unwrap();
        let routes = compute(&net);
        let r1 = net.router_id("r1").unwrap();
        let lan4: Ipv4Prefix = "10.1.4.0/24".parse().unwrap();
        let hops = &routes[r1.0 as usize][&lan4];
        assert_eq!(hops.len(), 2, "both diamond arms are equal-cost: {hops:?}");
    }

    #[test]
    fn filter_removes_candidate_without_recompute() {
        let mut cfgs = diamond();
        for rc in cfgs.routers.values_mut() {
            for i in rc.interfaces.iter_mut() {
                i.ospf_cost = None;
            }
        }
        // Deny the r4 LAN on r1's interface toward r2.
        {
            let r1 = cfgs.routers.get_mut("r1").unwrap();
            r1.prefix_lists.push(confmask_config::PrefixList {
                name: "F".into(),
                entries: vec![confmask_config::PrefixListEntry {
                    seq: 5,
                    action: confmask_config::FilterAction::Deny,
                    prefix: "10.1.4.0/24".parse().unwrap(),
                    added: false,
                }],
            });
            r1.ospf.as_mut().unwrap().distribute_lists.push(
                confmask_config::DistributeListBinding::Interface {
                    list: "F".into(),
                    interface: "Ethernet0/0".into(),
                    added: false,
                },
            );
        }
        let net = SimNetwork::build(&cfgs).unwrap();
        let routes = compute(&net);
        let r1 = net.router_id("r1").unwrap();
        let r3 = net.router_id("r3").unwrap();
        let lan4: Ipv4Prefix = "10.1.4.0/24".parse().unwrap();
        let hops = &routes[r1.0 as usize][&lan4];
        assert_eq!(hops.len(), 1, "only the unfiltered ECMP member remains");
        assert_eq!(hops[0].1, r3);
    }

    #[test]
    fn filtering_all_candidates_removes_the_route() {
        let mut cfgs = diamond();
        {
            let r1 = cfgs.routers.get_mut("r1").unwrap();
            r1.prefix_lists.push(confmask_config::PrefixList {
                name: "F".into(),
                entries: vec![confmask_config::PrefixListEntry {
                    seq: 5,
                    action: confmask_config::FilterAction::Deny,
                    prefix: "10.1.4.0/24".parse().unwrap(),
                    added: false,
                }],
            });
            // The cheap path's only candidate is via Ethernet0/0 (cost 1 side).
            r1.ospf.as_mut().unwrap().distribute_lists.push(
                confmask_config::DistributeListBinding::Interface {
                    list: "F".into(),
                    interface: "Ethernet0/0".into(),
                    added: false,
                },
            );
        }
        let net = SimNetwork::build(&cfgs).unwrap();
        let routes = compute(&net);
        let r1 = net.router_id("r1").unwrap();
        let lan4: Ipv4Prefix = "10.1.4.0/24".parse().unwrap();
        // Link-state: cost structure unchanged; sole min-cost candidate
        // filtered ⇒ no OSPF route (no silent fallback to pricier paths).
        assert!(!routes[r1.0 as usize].contains_key(&lan4));
    }

    #[test]
    fn router_paths_symmetric_diamond() {
        let net = SimNetwork::build(&diamond()).unwrap();
        let rp = router_paths(&net);
        let r1 = net.router_id("r1").unwrap().0 as usize;
        let r4 = net.router_id("r4").unwrap().0 as usize;
        assert_eq!(rp.dist[r1][r4], 2); // via the cost-1 links
        assert_eq!(rp.next_hops[r1][r4].len(), 1);
    }

    #[test]
    fn advertiser_needs_active_interface() {
        let mut cfgs = diamond();
        // Withdraw the r4 LAN from OSPF: network statements no longer cover it.
        let r4 = cfgs.routers.get_mut("r4").unwrap();
        r4.ospf.as_mut().unwrap().networks = vec![confmask_config::NetworkStatement {
            prefix: "10.0.0.0/16".parse().unwrap(),
            area: 0,
            added: false,
        }];
        let net = SimNetwork::build(&cfgs).unwrap();
        let routes = compute(&net);
        let r1 = net.router_id("r1").unwrap();
        let lan4: Ipv4Prefix = "10.1.4.0/24".parse().unwrap();
        assert!(!routes[r1.0 as usize].contains_key(&lan4));
    }
}
