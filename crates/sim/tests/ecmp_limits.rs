//! ECMP behaviour at the edges: wide fan-outs, the per-pair path cap, and
//! path-set determinism.

use confmask_config::{parse_router, HostConfig, NetworkConfigs};
use confmask_sim::dataplane::MAX_PATHS_PER_PAIR;
use confmask_sim::simulate;

fn host(name: &str, addr: &str, gw: &str) -> HostConfig {
    HostConfig {
        hostname: name.into(),
        iface_name: "eth0".into(),
        address: (addr.parse().unwrap(), 24),
        gateway: gw.parse().unwrap(),
        extra: vec![],
        added: false,
    }
}

/// A k-wide parallel "ladder": src router fans out to `k` middle routers
/// which all converge on the dst router — exactly `k` equal-cost paths.
fn ladder(k: usize) -> NetworkConfigs {
    let mut routers = Vec::new();
    let mut src = String::from(
        "hostname rsrc\n!\ninterface Ethernet1/0\n ip address 10.1.1.1 255.255.255.0\n!\n",
    );
    let mut dst = String::from(
        "hostname rdst\n!\ninterface Ethernet1/0\n ip address 10.1.2.1 255.255.255.0\n!\n",
    );
    for m in 0..k {
        let a = format!("10.0.{m}.0");
        let b = format!("10.0.{m}.2");
        src.push_str(&format!(
            "interface Ethernet0/{m}\n ip address {a} 255.255.255.254\n!\n"
        ));
        dst.push_str(&format!(
            "interface Ethernet0/{m}\n ip address 10.0.{m}.3 255.255.255.254\n!\n"
        ));
        routers.push(
            parse_router(&format!(
                "hostname rmid{m:02}\n!\ninterface Ethernet0/0\n ip address 10.0.{m}.1 255.255.255.254\n!\ninterface Ethernet0/1\n ip address {b} 255.255.255.254\n!\nrouter ospf 1\n network 0.0.0.0 255.255.255.255 area 0\n!\n"
            ))
            .unwrap(),
        );
    }
    src.push_str("router ospf 1\n network 0.0.0.0 255.255.255.255 area 0\n!\n");
    dst.push_str("router ospf 1\n network 0.0.0.0 255.255.255.255 area 0\n!\n");
    routers.push(parse_router(&src).unwrap());
    routers.push(parse_router(&dst).unwrap());
    NetworkConfigs::new(
        routers,
        [
            host("hs", "10.1.1.100", "10.1.1.1"),
            host("hd", "10.1.2.100", "10.1.2.1"),
        ],
    )
}

#[test]
fn wide_ecmp_enumerates_every_path() {
    let sim = simulate(&ladder(8)).unwrap();
    let ps = sim.dataplane.between("hs", "hd").unwrap();
    assert!(ps.clean());
    assert_eq!(ps.paths.len(), 8, "one path per middle router");
    // All paths distinct and of equal length.
    let set: std::collections::BTreeSet<_> = ps.paths.iter().collect();
    assert_eq!(set.len(), 8);
    assert!(ps.paths.iter().all(|p| p.len() == 5));
}

#[test]
fn path_cap_bounds_enumeration() {
    // Two ladders in series: 20 × 20 = 400 equal-cost paths > cap (256).
    // The enumerator must stop at the cap rather than exploding.
    let mut net = ladder(20);
    // Chain a second fan-out: rdst → 20 more middles → rfinal with hd2.
    let mut rdst_extra = String::new();
    let mut rfinal = String::from(
        "hostname rzfin\n!\ninterface Ethernet1/0\n ip address 10.1.3.1 255.255.255.0\n!\n",
    );
    let mut mids = Vec::new();
    for m in 0..20 {
        rdst_extra.push_str(&format!(
            "interface Ethernet2/{m}\n ip address 10.2.{m}.0 255.255.255.254\n!\n"
        ));
        rfinal.push_str(&format!(
            "interface Ethernet0/{m}\n ip address 10.2.{m}.3 255.255.255.254\n!\n"
        ));
        mids.push(
            parse_router(&format!(
                "hostname rnid{m:02}\n!\ninterface Ethernet0/0\n ip address 10.2.{m}.1 255.255.255.254\n!\ninterface Ethernet0/1\n ip address 10.2.{m}.2 255.255.255.254\n!\nrouter ospf 1\n network 0.0.0.0 255.255.255.255 area 0\n!\n"
            ))
            .unwrap(),
        );
    }
    rfinal.push_str("router ospf 1\n network 0.0.0.0 255.255.255.255 area 0\n!\n");
    {
        let rdst = net.routers.get_mut("rdst").unwrap();
        let extra = parse_router(&format!("hostname rdst\n!\n{rdst_extra}")).unwrap();
        rdst.interfaces.extend(extra.interfaces);
    }
    for m in mids {
        net.routers.insert(m.hostname.clone(), m);
    }
    let rf = parse_router(&rfinal).unwrap();
    net.routers.insert(rf.hostname.clone(), rf);
    net.hosts
        .insert("hd2".into(), host("hd2", "10.1.3.100", "10.1.3.1"));

    let sim = simulate(&net).unwrap();
    let ps = sim.dataplane.between("hs", "hd2").unwrap();
    assert!(!ps.blackhole && !ps.has_loop);
    assert!(
        ps.paths.len() <= MAX_PATHS_PER_PAIR,
        "cap respected: {}",
        ps.paths.len()
    );
    assert!(
        ps.paths.len() >= 200,
        "still enumerates a lot: {}",
        ps.paths.len()
    );
}

#[test]
fn path_sets_are_sorted_and_deterministic() {
    let a = simulate(&ladder(6)).unwrap();
    let b = simulate(&ladder(6)).unwrap();
    assert_eq!(a.dataplane, b.dataplane);
    let ps = a.dataplane.between("hs", "hd").unwrap();
    let mut sorted = ps.paths.clone();
    sorted.sort();
    assert_eq!(ps.paths, sorted, "paths are kept sorted");
}
