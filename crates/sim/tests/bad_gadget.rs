//! Griffin's BAD GADGET: a BGP instance with no stable routing must be
//! *detected* within the simulator's round budget, not spun on forever.

use confmask_sim::{simulate, SimError};
use std::time::{Duration, Instant};

#[test]
fn bad_gadget_diverges_within_budget() {
    let net = confmask_netgen::smallnets::bad_gadget();
    let start = Instant::now();
    let err = simulate(&net).expect_err("the bad gadget has no stable state");
    match err {
        SimError::BgpDiverged { rounds } => {
            // n = 4 routers → the 2n + 20 synchronous-round budget.
            assert_eq!(rounds, 28, "divergence reported at the round budget");
        }
        other => panic!("expected BgpDiverged, got: {other}"),
    }
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "detection must be bounded in wall-clock time"
    );
}

#[test]
fn removing_the_preference_cycle_restores_stability() {
    // The same topology with default local preferences is a stable instance:
    // every spoke just takes its direct route to the hub.
    let mut net = confmask_netgen::smallnets::bad_gadget();
    for rc in net.routers.values_mut() {
        if let Some(bgp) = rc.bgp.as_mut() {
            for nb in &mut bgp.neighbors {
                nb.local_pref = None;
            }
        }
    }
    let sim = simulate(&net).expect("without the preference cycle BGP converges");
    assert!(!sim.dataplane.is_empty() || net.hosts.len() < 2);
}
