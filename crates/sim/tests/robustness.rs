//! Fault-injection robustness: corrupted, truncated, or adversarial
//! configurations must produce errors or degraded data planes — never
//! panics, hangs, or silently wrong "clean" results.

use confmask_config::{parse_host, parse_router, NetworkConfigs};
use confmask_sim::simulate;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng as _, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The parser never panics on arbitrary input.
    #[test]
    fn parser_never_panics(text in ".{0,2000}") {
        let _ = parse_router(&text);
        let _ = parse_host(&text);
    }

    /// The parser never panics on line-structured input that *looks* like
    /// a config (more likely to reach deep code paths than pure noise).
    #[test]
    fn parser_never_panics_on_config_shaped_input(
        lines in prop::collection::vec(
            prop_oneof![
                Just("hostname r1".to_string()),
                Just("!".to_string()),
                Just("interface Ethernet0/0".to_string()),
                " ip address [0-9.]{1,20} [0-9.]{1,20}",
                Just("router ospf 1".to_string()),
                Just("router bgp 70000".to_string()),
                " network [0-9.]{1,20} [0-9.]{1,20} area [0-9]{1,5}",
                " neighbor [0-9.]{1,20} remote-as [0-9]{1,12}",
                "ip prefix-list F seq [0-9]{1,8} deny [0-9./]{1,22}",
                "ip route [0-9.]{1,20} [0-9.]{1,20} [0-9.]{1,20}",
                " [a-z ]{0,30}",
            ],
            0..40,
        )
    ) {
        let text = lines.join("\n");
        let _ = parse_router(&text);
    }
}

/// Mutates a known-good network and checks the simulator degrades
/// gracefully: every mutation either simulates (possibly with black holes)
/// or returns an error — never panics.
#[test]
fn simulator_survives_config_corruption() {
    let base = confmask_netgen::synthesize(&confmask_netgen::smallnets::university());
    let mut rng = StdRng::seed_from_u64(0xFA17);

    for trial in 0..200 {
        let mut net = base.clone();
        let kind = trial % 8;
        corrupt(&mut net, kind, &mut rng);
        match simulate(&net) {
            Ok(sim) => {
                // Whatever happened, the data plane is structurally sound:
                // paths start at src and end at dst.
                for ((src, dst), ps) in sim.dataplane.pairs() {
                    for p in &ps.paths {
                        assert_eq!(p.first(), Some(src));
                        assert_eq!(p.last(), Some(dst));
                    }
                }
            }
            Err(e) => {
                // Errors are fine; they must be descriptive.
                assert!(!e.to_string().is_empty());
            }
        }
    }
}

fn corrupt(net: &mut NetworkConfigs, kind: usize, rng: &mut StdRng) {
    let router_names: Vec<String> = net.routers.keys().cloned().collect();
    let pick = router_names.choose(rng).expect("non-empty").clone();
    let rc = net.routers.get_mut(&pick).expect("exists");
    match kind {
        0 => {
            // Shut down a random interface.
            if let Some(i) = rc.interfaces.choose_mut(rng) {
                i.shutdown = true;
            }
        }
        1 => {
            // Delete a random interface entirely.
            if !rc.interfaces.is_empty() {
                let idx = rng.gen_range(0..rc.interfaces.len());
                rc.interfaces.remove(idx);
            }
        }
        2 => {
            // Break an address (move it to a foreign subnet).
            if let Some(i) = rc.interfaces.choose_mut(rng) {
                i.address = Some(("203.0.113.7".parse().unwrap(), 24));
            }
        }
        3 => {
            // Remove the IGP block.
            rc.ospf = None;
            rc.rip = None;
        }
        4 => {
            // Remove all network statements.
            if let Some(o) = rc.ospf.as_mut() {
                o.networks.clear();
            }
        }
        5 => {
            // Corrupt a BGP neighbor address.
            if let Some(b) = rc.bgp.as_mut() {
                if let Some(n) = b.neighbors.choose_mut(rng) {
                    n.addr = "198.51.100.1".parse().unwrap();
                }
            }
        }
        6 => {
            // Point a host's gateway nowhere.
            let host_names: Vec<String> = net.hosts.keys().cloned().collect();
            if let Some(h) = host_names.choose(rng) {
                net.hosts.get_mut(h).expect("exists").gateway = "192.0.2.254".parse().unwrap();
            }
        }
        _ => {
            // Deny everything everywhere on one router.
            rc.prefix_lists.push(confmask_config::PrefixList {
                name: "DENYALL".into(),
                entries: vec![confmask_config::PrefixListEntry {
                    seq: 5,
                    action: confmask_config::FilterAction::Deny,
                    prefix: "0.0.0.0/0".parse().unwrap(),
                    added: false,
                }],
            });
            let ifaces: Vec<String> = rc.interfaces.iter().map(|i| i.name.clone()).collect();
            if let Some(o) = rc.ospf.as_mut() {
                for iface in ifaces {
                    o.distribute_lists
                        .push(confmask_config::DistributeListBinding::Interface {
                            list: "DENYALL".into(),
                            interface: iface,
                            added: false,
                        });
                }
            }
        }
    }
}

/// A network that only black-holes (no routing at all) still produces a
/// complete, non-panicking data plane.
#[test]
fn routing_free_network_blackholes_everywhere() {
    let mut net = confmask_netgen::synthesize(&confmask_netgen::smallnets::university());
    for rc in net.routers.values_mut() {
        rc.ospf = None;
        rc.rip = None;
        rc.bgp = None;
    }
    let sim = simulate(&net).unwrap();
    let same_lan_ok = |src: &str, dst: &str| {
        let (s, d) = (&net.hosts[src], &net.hosts[dst]);
        s.prefix() == d.prefix()
    };
    for ((src, dst), ps) in sim.dataplane.pairs() {
        if same_lan_ok(src, dst) {
            assert!(ps.clean());
        } else {
            assert!(ps.blackhole, "{src}->{dst} should blackhole: {ps:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Applying any failure scenario — valid faults, repeated faults, or
    /// references to elements the network does not have — to any small
    /// generated network never panics, and `apply` is idempotent:
    /// `apply(apply(c)) == apply(c)`.
    #[test]
    fn fault_injection_never_panics_and_is_idempotent(
        routers in 3usize..8,
        net_seed in 0u64..1000,
        picks in prop::collection::vec((any::<u64>(), 0usize..4), 1..4),
        bogus in "[a-z]{1,8}",
    ) {
        use confmask_sim::fault::{links_of, FailureScenario, Fault};

        let hosts = 2;
        let edges = (routers - 1 + routers / 2) + hosts;
        let spec = confmask_netgen::wan::wan_spec("prop", routers, hosts, edges, net_seed);
        let net = confmask_netgen::synthesize(&spec);
        let links = links_of(&net);
        prop_assume!(!links.is_empty());
        let router_names: Vec<String> = net.routers.keys().cloned().collect();

        let faults: Vec<Fault> = picks
            .iter()
            .map(|&(pick, kind)| {
                let pick = pick as usize;
                match kind {
                    0 => {
                        let (a, b, added) = links[pick % links.len()].clone();
                        Fault::LinkDown { a, b, added }
                    }
                    1 => Fault::RouterDown {
                        router: router_names[pick % router_names.len()].clone(),
                    },
                    2 => {
                        let name = &router_names[pick % router_names.len()];
                        let iface = net.routers[name].interfaces[0].name.clone();
                        Fault::InterfaceShutdown {
                            router: name.clone(),
                            iface,
                        }
                    }
                    _ => Fault::RouterDown {
                        router: bogus.clone(),
                    },
                }
            })
            .collect();
        let scenario = FailureScenario { faults };

        match scenario.apply(&net) {
            Ok(once) => {
                let twice = scenario.apply(&once).expect("re-apply of a valid scenario");
                prop_assert_eq!(&once, &twice);
                let _ = simulate(&once); // any outcome is fine; no panic
            }
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }
}

/// Two routers claiming the same interface address: the simulator builds a
/// model without panicking and the data plane stays structurally sound.
#[test]
fn duplicate_addresses_do_not_panic() {
    let mut net = confmask_netgen::synthesize(&confmask_netgen::smallnets::university());
    let clone_addr = {
        let first = net.routers.values().next().unwrap();
        first.interfaces[0].address
    };
    let last = net.routers.values_mut().next_back().unwrap();
    last.interfaces[0].address = clone_addr;
    let _ = simulate(&net); // either outcome is fine; no panic
}
