//! Integration tests for the BGP + IGP interaction: iBGP egress resolution
//! through OSPF, administrative-distance interplay, and filters on
//! iBGP-resolved next hops — the machinery ConfMask's route-equivalence
//! filters rely on in mixed BGP+OSPF networks.

use confmask_config::{parse_router, HostConfig, NetworkConfigs};
use confmask_sim::{simulate, RouteSource};

fn host(name: &str, addr: &str, gw: &str) -> HostConfig {
    HostConfig {
        hostname: name.into(),
        iface_name: "eth0".into(),
        address: (addr.parse().unwrap(), 24),
        gateway: gw.parse().unwrap(),
        extra: vec![],
        added: false,
    }
}

/// AS 100: i1 — i2 — b1 (OSPF inside, all run BGP);
/// AS 200: b2 with a host. eBGP between b1 and b2.
/// The interesting router is i1: it reaches AS 200's host via iBGP
/// (egress b1) resolved through OSPF (next hop i2).
fn two_as_with_interior() -> NetworkConfigs {
    let i1 = parse_router(
        "hostname i1\n!\ninterface Ethernet0/0\n ip address 10.0.1.0 255.255.255.254\n!\ninterface Ethernet0/1\n ip address 10.1.1.1 255.255.255.0\n!\nrouter ospf 1\n network 10.0.1.0 0.0.0.1 area 0\n network 10.1.1.0 0.0.0.255 area 0\n!\nrouter bgp 100\n network 10.1.1.0 mask 255.255.255.0\n!\n",
    )
    .unwrap();
    let i2 = parse_router(
        "hostname i2\n!\ninterface Ethernet0/0\n ip address 10.0.1.1 255.255.255.254\n!\ninterface Ethernet0/1\n ip address 10.0.2.0 255.255.255.254\n!\nrouter ospf 1\n network 10.0.1.0 0.0.0.1 area 0\n network 10.0.2.0 0.0.0.1 area 0\n!\nrouter bgp 100\n!\n",
    )
    .unwrap();
    let b1 = parse_router(
        "hostname b1\n!\ninterface Ethernet0/0\n ip address 10.0.2.1 255.255.255.254\n!\ninterface Ethernet0/1\n ip address 10.0.9.0 255.255.255.254\n!\nrouter ospf 1\n network 10.0.2.0 0.0.0.1 area 0\n!\nrouter bgp 100\n neighbor 10.0.9.1 remote-as 200\n!\n",
    )
    .unwrap();
    let b2 = parse_router(
        "hostname b2\n!\ninterface Ethernet0/0\n ip address 10.0.9.1 255.255.255.254\n!\ninterface Ethernet0/1\n ip address 10.2.1.1 255.255.255.0\n!\nrouter bgp 200\n network 10.2.1.0 mask 255.255.255.0\n neighbor 10.0.9.0 remote-as 100\n!\n",
    )
    .unwrap();
    NetworkConfigs::new(
        [i1, i2, b1, b2],
        [
            host("h1", "10.1.1.100", "10.1.1.1"),
            host("h2", "10.2.1.100", "10.2.1.1"),
        ],
    )
}

#[test]
fn interior_router_resolves_ibgp_through_ospf() {
    let net = two_as_with_interior();
    let sim = simulate(&net).unwrap();
    let i1 = sim.net.router_id("i1").unwrap();
    let i2 = sim.net.router_id("i2").unwrap();
    let entry = sim
        .fibs
        .of(i1)
        .lookup("10.2.1.100".parse().unwrap())
        .unwrap();
    assert_eq!(entry.source, RouteSource::Ibgp, "interior router uses iBGP");
    assert_eq!(entry.next_hops.len(), 1);
    assert_eq!(
        entry.next_hops[0].router(),
        Some(i2),
        "resolved via OSPF toward egress b1"
    );

    let ps = sim.dataplane.between("h1", "h2").unwrap();
    assert!(ps.clean());
    assert_eq!(
        ps.paths,
        vec![vec![
            "h1".to_string(),
            "i1".into(),
            "i2".into(),
            "b1".into(),
            "b2".into(),
            "h2".into()
        ]]
    );
}

#[test]
fn border_router_uses_ebgp() {
    let net = two_as_with_interior();
    let sim = simulate(&net).unwrap();
    let b1 = sim.net.router_id("b1").unwrap();
    let entry = sim
        .fibs
        .of(b1)
        .lookup("10.2.1.100".parse().unwrap())
        .unwrap();
    assert_eq!(entry.source, RouteSource::Ebgp);
}

#[test]
fn intra_as_prefix_stays_on_ospf() {
    // h1's LAN is AS-100-internal: interior and border routers must use
    // OSPF (AD 110) rather than iBGP (AD 200) for it.
    let net = two_as_with_interior();
    let sim = simulate(&net).unwrap();
    for name in ["i2", "b1"] {
        let rid = sim.net.router_id(name).unwrap();
        let entry = sim
            .fibs
            .of(rid)
            .lookup("10.1.1.100".parse().unwrap())
            .unwrap();
        assert_eq!(entry.source, RouteSource::Ospf, "{name}");
    }
}

#[test]
fn igp_filter_suppresses_ibgp_resolution() {
    // Deny h2's prefix on i1's interface toward i2. The iBGP route's only
    // resolved next hop dies ⇒ i1 has no route ⇒ black hole. This is the
    // semantics ConfMask's filters use to steer BGP-learned destinations
    // off fake intra-AS links (where an equal-cost alternative always
    // remains; here there is none, so the route disappears).
    let mut net = two_as_with_interior();
    {
        let i1 = net.routers.get_mut("i1").unwrap();
        i1.prefix_lists.push(confmask_config::PrefixList {
            name: "F".into(),
            entries: vec![confmask_config::PrefixListEntry {
                seq: 5,
                action: confmask_config::FilterAction::Deny,
                prefix: "10.2.1.0/24".parse().unwrap(),
                added: false,
            }],
        });
        i1.ospf.as_mut().unwrap().distribute_lists.push(
            confmask_config::DistributeListBinding::Interface {
                list: "F".into(),
                interface: "Ethernet0/0".into(),
                added: false,
            },
        );
    }
    let sim = simulate(&net).unwrap();
    let ps = sim.dataplane.between("h1", "h2").unwrap();
    assert!(ps.blackhole, "{ps:?}");
    // The reverse direction is unaffected.
    assert!(sim.dataplane.between("h2", "h1").unwrap().clean());
}

#[test]
fn bgp_session_filter_blocks_at_the_border() {
    let mut net = two_as_with_interior();
    {
        let b1 = net.routers.get_mut("b1").unwrap();
        b1.prefix_lists.push(confmask_config::PrefixList {
            name: "F".into(),
            entries: vec![confmask_config::PrefixListEntry {
                seq: 5,
                action: confmask_config::FilterAction::Deny,
                prefix: "10.2.1.0/24".parse().unwrap(),
                added: false,
            }],
        });
        b1.bgp.as_mut().unwrap().distribute_lists.push(
            confmask_config::DistributeListBinding::Neighbor {
                list: "F".into(),
                neighbor: "10.0.9.1".parse().unwrap(),
                added: false,
            },
        );
    }
    let sim = simulate(&net).unwrap();
    // Nobody in AS 100 can reach h2 anymore: the only eBGP import is gone.
    assert!(sim.dataplane.between("h1", "h2").unwrap().blackhole);
}

#[test]
fn parallel_ebgp_sessions_prefer_lower_session_index() {
    // Two parallel links (and sessions) between b1 and b2: the decision
    // process must be deterministic.
    let mut net = two_as_with_interior();
    {
        let b1 = net.routers.get_mut("b1").unwrap();
        b1.interfaces.push(confmask_config::Interface::new(
            "Ethernet0/9",
            "10.0.10.0".parse().unwrap(),
            31,
        ));
        b1.bgp
            .as_mut()
            .unwrap()
            .neighbors
            .push(confmask_config::BgpNeighbor {
                addr: "10.0.10.1".parse().unwrap(),
                remote_as: confmask_net_types::Asn(200),
                local_pref: None,
                added: false,
            });
        let b2 = net.routers.get_mut("b2").unwrap();
        b2.interfaces.push(confmask_config::Interface::new(
            "Ethernet0/9",
            "10.0.10.1".parse().unwrap(),
            31,
        ));
        b2.bgp
            .as_mut()
            .unwrap()
            .neighbors
            .push(confmask_config::BgpNeighbor {
                addr: "10.0.10.0".parse().unwrap(),
                remote_as: confmask_net_types::Asn(100),
                local_pref: None,
                added: false,
            });
    }
    let a = simulate(&net).unwrap();
    let b = simulate(&net).unwrap();
    let b1 = a.net.router_id("b1").unwrap();
    let ea = a.fibs.of(b1).lookup("10.2.1.100".parse().unwrap()).unwrap();
    let eb = b.fibs.of(b1).lookup("10.2.1.100".parse().unwrap()).unwrap();
    assert_eq!(ea, eb, "deterministic tie-break across runs");
    assert_eq!(ea.next_hops.len(), 1, "BGP picks one best path");
}

#[test]
fn local_preference_overrides_as_path_length() {
    // Give b1 a second, longer way to h2: via AS 300 (b3) which transits to
    // AS 200. With a high local-preference on the AS 300 session, the
    // longer AS path must win at b1 — local-pref precedes AS-path length
    // in the decision process.
    let mut net = two_as_with_interior();
    let b3 = parse_router(
        "hostname b3\n!\ninterface Ethernet0/0\n ip address 10.0.11.1 255.255.255.254\n!\ninterface Ethernet0/1\n ip address 10.0.12.0 255.255.255.254\n!\nrouter bgp 300\n neighbor 10.0.11.0 remote-as 100\n neighbor 10.0.12.1 remote-as 200\n!\n",
    )
    .unwrap();
    net.routers.insert("b3".into(), b3);
    {
        let b1 = net.routers.get_mut("b1").unwrap();
        b1.interfaces.push(confmask_config::Interface::new(
            "Ethernet0/8",
            "10.0.11.0".parse().unwrap(),
            31,
        ));
        let bgp = b1.bgp.as_mut().unwrap();
        bgp.neighbors.push(confmask_config::BgpNeighbor {
            addr: "10.0.11.1".parse().unwrap(),
            remote_as: confmask_net_types::Asn(300),
            local_pref: Some(200), // prefer the detour
            added: false,
        });
        let b2 = net.routers.get_mut("b2").unwrap();
        b2.interfaces.push(confmask_config::Interface::new(
            "Ethernet0/8",
            "10.0.12.1".parse().unwrap(),
            31,
        ));
        b2.bgp
            .as_mut()
            .unwrap()
            .neighbors
            .push(confmask_config::BgpNeighbor {
                addr: "10.0.12.0".parse().unwrap(),
                remote_as: confmask_net_types::Asn(300),
                local_pref: None,
                added: false,
            });
    }
    let sim = simulate(&net).unwrap();
    let ps = sim.dataplane.between("h1", "h2").unwrap();
    assert!(ps.clean(), "{ps:?}");
    assert!(
        ps.paths.iter().all(|p| p.contains(&"b3".to_string())),
        "high local-pref forces the AS 300 detour: {:?}",
        ps.paths
    );
    // Without the local-preference, the direct session wins.
    net.routers
        .get_mut("b1")
        .unwrap()
        .bgp
        .as_mut()
        .unwrap()
        .neighbors
        .iter_mut()
        .for_each(|n| n.local_pref = None);
    let sim = simulate(&net).unwrap();
    let ps = sim.dataplane.between("h1", "h2").unwrap();
    assert!(
        ps.paths.iter().all(|p| !p.contains(&"b3".to_string())),
        "default preferences take the shorter AS path: {:?}",
        ps.paths
    );
}

#[test]
fn local_preference_round_trips_through_text() {
    let mut net = two_as_with_interior();
    net.routers
        .get_mut("b1")
        .unwrap()
        .bgp
        .as_mut()
        .unwrap()
        .neighbors[0]
        .local_pref = Some(250);
    let text = net.routers["b1"].emit();
    assert!(text.contains(" neighbor 10.0.9.1 local-preference 250"));
    let back = parse_router(&text).unwrap();
    assert_eq!(back, net.routers["b1"]);
}
