//! Integration tests for static routing: administrative distance,
//! longest-prefix match against dynamic routes, default routes, forwarding
//! loops, and black holes.

use confmask_config::{parse_router, HostConfig, NetworkConfigs, StaticRoute};
use confmask_sim::{simulate, RouteSource};

fn host(name: &str, addr: &str, gw: &str) -> HostConfig {
    HostConfig {
        hostname: name.into(),
        iface_name: "eth0".into(),
        address: (addr.parse().unwrap(), 24),
        gateway: gw.parse().unwrap(),
        extra: vec![],
        added: false,
    }
}

/// Triangle r1–r2–r3 with OSPF everywhere, hosts on r1 and r3.
fn triangle() -> NetworkConfigs {
    let r1 = parse_router(
        "hostname r1\n!\ninterface Ethernet0/0\n ip address 10.0.12.0 255.255.255.254\n!\ninterface Ethernet0/1\n ip address 10.0.13.0 255.255.255.254\n!\ninterface Ethernet0/2\n ip address 10.1.1.1 255.255.255.0\n!\nrouter ospf 1\n network 0.0.0.0 255.255.255.255 area 0\n!\n",
    )
    .unwrap();
    let r2 = parse_router(
        "hostname r2\n!\ninterface Ethernet0/0\n ip address 10.0.12.1 255.255.255.254\n!\ninterface Ethernet0/1\n ip address 10.0.23.0 255.255.255.254\n!\nrouter ospf 1\n network 0.0.0.0 255.255.255.255 area 0\n!\n",
    )
    .unwrap();
    let r3 = parse_router(
        "hostname r3\n!\ninterface Ethernet0/0\n ip address 10.0.13.1 255.255.255.254\n!\ninterface Ethernet0/1\n ip address 10.0.23.1 255.255.255.254\n!\ninterface Ethernet0/2\n ip address 10.1.3.1 255.255.255.0\n!\nrouter ospf 1\n network 0.0.0.0 255.255.255.255 area 0\n!\n",
    )
    .unwrap();
    NetworkConfigs::new(
        [r1, r2, r3],
        [
            host("h1", "10.1.1.100", "10.1.1.1"),
            host("h3", "10.1.3.100", "10.1.3.1"),
        ],
    )
}

#[test]
fn static_route_overrides_ospf() {
    let mut net = triangle();
    // OSPF prefers the direct r1→r3 link; force h3 traffic through r2.
    net.routers
        .get_mut("r1")
        .unwrap()
        .static_routes
        .push(StaticRoute {
            prefix: "10.1.3.0/24".parse().unwrap(),
            next_hop: "10.0.12.1".parse().unwrap(), // r2
            added: false,
        });
    let sim = simulate(&net).unwrap();
    let r1 = sim.net.router_id("r1").unwrap();
    let entry = sim
        .fibs
        .of(r1)
        .lookup("10.1.3.100".parse().unwrap())
        .unwrap();
    assert_eq!(entry.source, RouteSource::Static);
    let ps = sim.dataplane.between("h1", "h3").unwrap();
    assert_eq!(
        ps.paths,
        vec![vec![
            "h1".to_string(),
            "r1".into(),
            "r2".into(),
            "r3".into(),
            "h3".into()
        ]],
        "traffic detours through r2"
    );
    assert!(ps.clean());
}

#[test]
fn default_route_covers_unknown_destinations() {
    let mut net = triangle();
    // Withdraw h3's LAN from OSPF on r3 and give r1/r2 default routes
    // toward r3 instead.
    {
        let r3 = net.routers.get_mut("r3").unwrap();
        r3.ospf.as_mut().unwrap().networks[0].prefix = "10.0.0.0/15".parse().unwrap();
    }
    net.routers
        .get_mut("r1")
        .unwrap()
        .static_routes
        .push(StaticRoute {
            prefix: "0.0.0.0/0".parse().unwrap(),
            next_hop: "10.0.13.1".parse().unwrap(), // r3 directly
            added: false,
        });
    let sim = simulate(&net).unwrap();
    let ps = sim.dataplane.between("h1", "h3").unwrap();
    assert!(ps.clean(), "{ps:?}");
    assert_eq!(
        ps.paths,
        vec![vec![
            "h1".to_string(),
            "r1".into(),
            "r3".into(),
            "h3".into()
        ]]
    );
    // Reverse direction still works via r3's connected + OSPF route to h1.
    assert!(sim.dataplane.between("h3", "h1").unwrap().clean());
}

#[test]
fn longest_prefix_match_beats_admin_distance() {
    let mut net = triangle();
    // A /16 static toward r2 must NOT shadow the /24 OSPF route via r3:
    // LPM is decided before administrative distance.
    net.routers
        .get_mut("r1")
        .unwrap()
        .static_routes
        .push(StaticRoute {
            prefix: "10.1.0.0/16".parse().unwrap(),
            next_hop: "10.0.12.1".parse().unwrap(), // r2
            added: false,
        });
    let sim = simulate(&net).unwrap();
    let ps = sim.dataplane.between("h1", "h3").unwrap();
    assert_eq!(
        ps.paths,
        vec![vec![
            "h1".to_string(),
            "r1".into(),
            "r3".into(),
            "h3".into()
        ]],
        "the more specific OSPF route wins"
    );
}

#[test]
fn static_loop_is_detected() {
    let mut net = triangle();
    // A prefix no one owns, with r1 and r2 pointing at each other.
    net.routers
        .get_mut("r1")
        .unwrap()
        .static_routes
        .push(StaticRoute {
            prefix: "10.9.9.0/24".parse().unwrap(),
            next_hop: "10.0.12.1".parse().unwrap(), // r2
            added: false,
        });
    net.routers
        .get_mut("r2")
        .unwrap()
        .static_routes
        .push(StaticRoute {
            prefix: "10.9.9.0/24".parse().unwrap(),
            next_hop: "10.0.12.0".parse().unwrap(), // back to r1
            added: false,
        });
    // A host claiming to live in that prefix (its gateway resolves
    // nowhere, so traffic enters the loop from elsewhere).
    net.hosts
        .insert("h9".into(), host("h9", "10.9.9.100", "10.9.9.1"));
    let sim = simulate(&net).unwrap();
    let ps = sim.dataplane.between("h1", "h9").unwrap();
    assert!(ps.has_loop, "r1↔r2 static loop must be flagged: {ps:?}");
    assert!(ps.paths.is_empty());
}

#[test]
fn unresolvable_next_hop_is_ignored() {
    let mut net = triangle();
    net.routers
        .get_mut("r1")
        .unwrap()
        .static_routes
        .push(StaticRoute {
            prefix: "10.1.3.0/24".parse().unwrap(),
            next_hop: "192.0.2.99".parse().unwrap(), // not on any segment
            added: false,
        });
    let sim = simulate(&net).unwrap();
    let r1 = sim.net.router_id("r1").unwrap();
    // The unresolvable static is absent; OSPF still routes.
    let entry = sim
        .fibs
        .of(r1)
        .lookup("10.1.3.100".parse().unwrap())
        .unwrap();
    assert_eq!(entry.source, RouteSource::Ospf);
    assert!(sim.dataplane.between("h1", "h3").unwrap().clean());
}

#[test]
fn static_toward_missing_prefix_blackholes() {
    let mut net = triangle();
    // r1 statically sends 10.9.9.0/24 to r2, which has no route at all.
    net.routers
        .get_mut("r1")
        .unwrap()
        .static_routes
        .push(StaticRoute {
            prefix: "10.9.9.0/24".parse().unwrap(),
            next_hop: "10.0.12.1".parse().unwrap(),
            added: false,
        });
    net.hosts
        .insert("h9".into(), host("h9", "10.9.9.100", "10.9.9.1"));
    let sim = simulate(&net).unwrap();
    let ps = sim.dataplane.between("h1", "h9").unwrap();
    assert!(ps.blackhole, "{ps:?}");
}
