//! Offline stub of `serde`.
//!
//! This workspace uses serde solely as `#[derive(serde::Serialize,
//! serde::Deserialize)]` markers on data types — nothing in the tree ever
//! serializes a value (no `serde_json`, no transport). The container this
//! repository builds in has no network access to crates.io, so the real
//! crate is replaced by this stub: empty marker traits plus derive macros
//! that expand to nothing. Swapping the real serde back in is a one-line
//! change in the workspace `Cargo.toml`.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

// Same-name re-exports of the derive macros (traits and derive macros live
// in different namespaces, exactly as in the real serde with the `derive`
// feature).
pub use serde_derive::{Deserialize, Serialize};
