//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build container has no route to crates.io, so this workspace vendors
//! the slice of `rand` it actually uses: `Rng` (gen / gen_bool / gen_range),
//! `SeedableRng::seed_from_u64`, `rngs::StdRng`, and
//! `seq::SliceRandom` (choose / choose_mut / shuffle). The generator is a
//! proper xoshiro256++ seeded through SplitMix64 — deterministic given the
//! seed, which is all the anonymization pipeline requires (its contract is
//! "same seed, same output", not "same stream as upstream rand").

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable from raw bits (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing random-value API (blanket-implemented for every
/// [`RngCore`], including `&mut R`, mirroring rand 0.8).
pub trait Rng: RngCore {
    /// A random value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }

    /// A value uniform in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — a solid general-purpose PRNG; stands in for rand's
    /// `StdRng` (which makes no reproducibility promises across versions
    /// anyway).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 stream seeds the four lanes (the xoshiro authors'
            // recommended initialization).
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers (`SliceRandom`).
pub mod seq {
    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// A uniformly chosen mutable element, or `None` if empty.
        fn choose_mut<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> Option<&mut Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.next_u64() as usize % self.len())
            }
        }

        fn choose_mut<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> Option<&mut T> {
            if self.is_empty() {
                None
            } else {
                let i = rng.next_u64() as usize % self.len();
                self.get_mut(i)
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.next_u64() as usize % (i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_and_choose_preserve_elements() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
