//! Offline stub of `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on many types but never
//! calls a serializer (there is no `serde_json` or similar in the tree), so
//! the derives only need to *compile*. Each macro expands to an empty token
//! stream; the marker traits live in the sibling `serde` stub.

use proc_macro::TokenStream;

/// Derives the (empty) `serde::Serialize` marker.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derives the (empty) `serde::Deserialize` marker.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
