//! Offline stand-in for `proptest`.
//!
//! The build container cannot reach crates.io, so this crate vendors the
//! subset of proptest the workspace's property tests use:
//!
//! * [`Strategy`] with `prop_map` / `prop_filter`, integer-range and tuple
//!   strategies, [`Just`], `any::<T>()`, `collection::vec`, `option::of`,
//!   and regex-subset string strategies (`"[a-z]{1,20}"` as a strategy);
//! * the [`proptest!`] macro with optional `#![proptest_config(..)]`,
//!   plus `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`,
//!   `prop_assume!` and `prop_oneof!`.
//!
//! Differences from the real crate: no shrinking (a failing case is
//! reported with its `Debug` rendering at full size), no regression-file
//! persistence (existing `*.proptest-regressions` files are ignored), and
//! the RNG is a fixed-seed xoshiro256++ so test runs are deterministic.

#![forbid(unsafe_code)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic test RNG (xoshiro256++ seeded via SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A generator for the given seed.
    pub fn seeded(seed: u64) -> Self {
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform usize in `[lo, hi]`.
    pub fn usize_between(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below((hi - lo + 1) as u64) as usize
    }
}

// ---------------------------------------------------------------------------
// Test-case plumbing
// ---------------------------------------------------------------------------

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed — the whole test fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs — the case is skipped.
    Reject(String),
}

impl TestCaseError {
    /// Constructs a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Constructs a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (field subset of the real `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Accepted for compatibility; this stub never shrinks.
    pub max_shrink_iters: u32,
    /// Bound on `prop_assume!` rejections before the run aborts.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
            max_global_rejects: 65536,
        }
    }
}

impl ProptestConfig {
    /// A default configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }
}

/// Drives `config.cases` successful executions of `case`. Called by the
/// expansion of [`proptest!`]; panics (failing the `#[test]`) on the first
/// case that returns [`TestCaseError::Fail`].
pub fn run_cases(test_name: &str, config: &ProptestConfig, case: impl Fn(&mut TestRng) -> TestCaseResult) {
    // Per-test deterministic seed so sibling tests explore different space.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    let mut rng = TestRng::seeded(h);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "{test_name}: too many prop_assume! rejections ({rejected}) — \
                         only {passed}/{} cases ran",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{test_name}: property failed after {passed} passing case(s): {msg}");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Value`.
///
/// Unlike the real proptest there is no value tree and no shrinking; a
/// strategy is just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `f`; gives up (panics) if the filter
    /// rejects too often, mirroring proptest's whole-run rejection cap.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}) rejected 1000 consecutive values — strategy too narrow",
            self.whence
        );
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T: fmt::Debug> Union<T> {
    /// A union over `alts` (must be non-empty).
    pub fn new(alts: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!alts.is_empty(), "prop_oneof! needs at least one arm");
        Union(alts)
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

// --- primitive strategies ---------------------------------------------------

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: fmt::Debug + Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

// --- regex-subset string strategies ----------------------------------------

/// `&str` is a strategy generating strings from a small regex subset:
/// literals, `.`, character classes `[a-z0-9./]` (ranges and literal
/// members), and `{m}` / `{m,n}` repetition of the preceding atom. This
/// covers the patterns the workspace's tests use.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        gen_from_pattern(self, rng)
    }
}

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    AnyChar,
    Class(Vec<(char, char)>),
}

fn sample_atom(a: &Atom, rng: &mut TestRng) -> char {
    match a {
        Atom::Literal(c) => *c,
        Atom::AnyChar => {
            // Printable ASCII keeps generated configs line-structured.
            (0x20 + rng.below(0x5f) as u8) as char
        }
        Atom::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1)
                .sum();
            let mut pick = rng.below(total);
            for (lo, hi) in ranges {
                let span = (*hi as u64) - (*lo as u64) + 1;
                if pick < span {
                    return char::from_u32(*lo as u32 + pick as u32).unwrap_or(*lo);
                }
                pick -= span;
            }
            unreachable!("pick < total")
        }
    }
}

fn gen_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    let mut last: Option<Atom> = None;
    while i < chars.len() {
        match chars[i] {
            '.' => {
                if let Some(a) = last.take() {
                    out.push(sample_atom(&a, rng));
                }
                last = Some(Atom::AnyChar);
                i += 1;
            }
            '[' => {
                if let Some(a) = last.take() {
                    out.push(sample_atom(&a, rng));
                }
                let mut ranges = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let lo = chars[i];
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                i += 1; // consume ']'
                last = Some(Atom::Class(ranges));
            }
            '{' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| p + i)
                    .expect("unclosed {} in pattern");
                let spec: String = chars[i + 1..close].iter().collect();
                let (lo, hi) = match spec.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse::<usize>().expect("bad repeat lower bound"),
                        b.trim().parse::<usize>().expect("bad repeat upper bound"),
                    ),
                    None => {
                        let n = spec.trim().parse::<usize>().expect("bad repeat count");
                        (n, n)
                    }
                };
                let atom = last.take().expect("{} repetition with no preceding atom");
                let n = rng.usize_between(lo, hi);
                for _ in 0..n {
                    out.push(sample_atom(&atom, rng));
                }
                i = close + 1;
            }
            '\\' => {
                if let Some(a) = last.take() {
                    out.push(sample_atom(&a, rng));
                }
                i += 1;
                if i < chars.len() {
                    last = Some(Atom::Literal(chars[i]));
                    i += 1;
                }
            }
            c => {
                if let Some(a) = last.take() {
                    out.push(sample_atom(&a, rng));
                }
                last = Some(Atom::Literal(c));
                i += 1;
            }
        }
    }
    if let Some(a) = last {
        out.push(sample_atom(&a, rng));
    }
    out
}

// --- collections ------------------------------------------------------------

/// Length specification for [`collection::vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec length range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::fmt;

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: SizeRange,
    }

    /// Vectors of `elem` with length in `len`.
    pub fn vec<S: Strategy>(elem: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.usize_between(self.len.lo, self.len.hi);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::{Strategy, TestRng};
    use std::fmt;

    /// Strategy for `Option<S::Value>` (`None` one time in four).
    pub struct OptionStrategy<S>(S);

    /// `Some(value)` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// Namespace alias mirroring `proptest::prelude::prop`.
pub mod prop {
    pub use crate::{collection, option};
}

/// The glob-import surface tests use.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests; see the real proptest for the syntax. Supports
/// an optional leading `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(stringify!($name), &__config, |__rng| {
                    $(let $pat = $crate::Strategy::generate(&($strat), __rng);)+
                    let __body = || -> $crate::TestCaseResult { $body Ok(()) };
                    __body()
                });
            }
        )*
    };
}

/// Like `assert!` but fails only the current generated case's closure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `prop_assert!(a == b)` with value reporting.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: `{:?}` == `{:?}`", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: `{:?}` == `{:?}`: {}", a, b, format!($($fmt)*));
    }};
}

/// `prop_assert!(a != b)` with value reporting.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: `{:?}` != `{:?}`", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: `{:?}` != `{:?}`: {}", a, b, format!($($fmt)*));
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_patterns() {
        let mut rng = crate::TestRng::seeded(1);
        for _ in 0..50 {
            let s = crate::Strategy::generate(&"[a-c]{2,4}", &mut rng);
            assert!(
                (2..=4).contains(&s.len()) && s.chars().all(|c| ('a'..='c').contains(&c)),
                "{s:?}"
            );
            let t = crate::Strategy::generate(&"x[0-9]{1,2}y", &mut rng);
            assert!(t.starts_with('x') && t.ends_with('y'), "{t:?}");
            let u = crate::Strategy::generate(&".{0,5}", &mut rng);
            assert!(u.len() <= 5, "{u:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(x in 3usize..10, (a, b) in (0u8..5, any::<bool>())) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(a < 5);
            let _ = b;
        }

        #[test]
        fn vec_and_option_and_map(
            v in prop::collection::vec(any::<u16>().prop_map(|x| x as u32), 1..6),
            o in crate::option::of(1u32..9),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            if let Some(x) = o {
                prop_assert!((1..9).contains(&x));
            }
        }

        #[test]
        fn assume_and_oneof(
            s in prop_oneof![Just("alpha".to_string()), "[x-z]{1,3}"],
            n in 0u32..100,
        ) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
            prop_assert!(!s.is_empty());
        }

        #[test]
        fn filters_narrow(p in (0u32..100).prop_filter("even only", |v| v % 2 == 0)) {
            prop_assert_eq!(p % 2, 0);
            prop_assert_ne!(p % 2, 1);
        }
    }
}
