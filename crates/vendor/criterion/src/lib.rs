//! Offline stand-in for `criterion`.
//!
//! Provides the API subset the workspace's benches use — `Criterion`,
//! benchmark groups, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — implemented as a simple
//! timed-loop harness: each benchmark runs a small fixed number of timed
//! iterations and reports the mean. No statistics, plots, or CLI filtering;
//! enough to keep `--all-targets` builds green and give ballpark numbers.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendering.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{function}/{parameter}"),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.total = start.elapsed();
    }
}

fn run_one(label: &str, sample_size: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters: sample_size,
        total: Duration::ZERO,
    };
    f(&mut b);
    let mean = if b.iters > 0 {
        b.total / b.iters as u32
    } else {
        Duration::ZERO
    };
    println!("bench {label:<48} {mean:>12.3?}/iter  ({} iters)", b.iters);
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets iterations per benchmark (criterion's sample count analogue).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry object.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Default iterations when a group does not call `sample_size`.
    const DEFAULT_SAMPLE_SIZE: u64 = 10;

    /// Runs a standalone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&id.to_string(), Self::DEFAULT_SAMPLE_SIZE, &mut f);
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: Self::DEFAULT_SAMPLE_SIZE,
            _parent: self,
        }
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function("direct", |b| b.iter(|| black_box(2 + 2)));
        g.finish();
        c.bench_function(BenchmarkId::from_parameter("x"), |b| b.iter(|| 1));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
