//! Codec fuzz harness: every vendor frontend must (a) never panic on
//! arbitrary input, (b) round-trip canonical emission byte-exactly, and
//! (c) agree with every other vendor on the neutral model after
//! translation.

use confmask_config::*;
use confmask_net_types::{Asn, Ipv4Prefix};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9-]{0,8}".prop_map(|s| s)
}

fn arb_prefix() -> impl Strategy<Value = Ipv4Prefix> {
    (any::<u32>(), 8u8..=31).prop_map(|(bits, len)| {
        Ipv4Prefix::new(Ipv4Addr::from(bits), len).expect("len <= 32")
    })
}

fn arb_interface(n: usize) -> impl Strategy<Value = Interface> {
    (
        proptest::option::of(arb_prefix()),
        proptest::option::of(1u32..1000),
        proptest::option::of("[a-zA-Z0-9_-]{1,12}"),
        any::<bool>(),
        prop::collection::vec("x-[a-z0-9]{1,10}", 0..3),
    )
        .prop_map(move |(p, cost, desc, shutdown, extra)| Interface {
            name: format!("Ethernet0/{n}"),
            address: p.map(|p| (p.first_host(), p.len())),
            ospf_cost: cost,
            description: desc,
            shutdown,
            extra,
            added: false,
        })
}

fn net_stmt(prefix: Ipv4Prefix, area: u32) -> NetworkStatement {
    NetworkStatement {
        prefix,
        area,
        added: false,
    }
}

/// A full-featured router touching every model field the dialects can
/// express: interfaces with extras, all three protocol blocks, prefix
/// lists, static routes, and unrecognized top-level lines.
fn arb_router() -> impl Strategy<Value = RouterConfig> {
    (
        arb_name(),
        prop::collection::vec(arb_interface(0), 0..4).prop_map(|mut v| {
            for (n, i) in v.iter_mut().enumerate() {
                i.name = format!("Ethernet0/{n}");
            }
            v
        }),
        proptest::option::of((1u32..100, prop::collection::vec((arb_prefix(), 0u32..3), 0..3))),
        proptest::option::of(prop::collection::vec(arb_prefix(), 0..3)),
        proptest::option::of((1u32..65000, prop::collection::vec(arb_prefix(), 0..3))),
        prop::collection::vec((arb_prefix(), any::<bool>()), 0..4),
        prop::collection::vec((arb_prefix(), any::<u32>()), 0..3),
        prop::collection::vec("x-[a-z0-9]{1,10}", 0..3),
    )
        .prop_map(
            |(hostname, interfaces, ospf, rip, bgp, pfx, statics, extra_lines)| {
                let ospf = ospf.map(|(pid, nets)| OspfConfig {
                    process_id: pid,
                    networks: nets.into_iter().map(|(p, a)| net_stmt(p, a)).collect(),
                    distribute_lists: vec![DistributeListBinding::Interface {
                        list: "OspfFilter".into(),
                        interface: "Ethernet0/0".into(),
                        added: false,
                    }],
                });
                let rip = rip.map(|nets| RipConfig {
                    networks: nets.into_iter().map(|p| net_stmt(p, 0)).collect(),
                    distribute_lists: vec![],
                });
                let bgp = bgp.map(|(asn, nets)| BgpConfig {
                    asn: Asn(asn),
                    networks: nets.into_iter().map(|p| net_stmt(p, 0)).collect(),
                    neighbors: (0..2)
                        .map(|i| BgpNeighbor {
                            addr: Ipv4Addr::new(10, 255, 0, i),
                            remote_as: Asn(65000 + u32::from(i)),
                            local_pref: if i == 0 { Some(200) } else { None },
                            added: false,
                        })
                        .collect(),
                    distribute_lists: vec![DistributeListBinding::Neighbor {
                        list: "RejPfxs".into(),
                        neighbor: Ipv4Addr::new(10, 255, 0, 0),
                        added: false,
                    }],
                });
                let prefix_lists = if pfx.is_empty() {
                    vec![]
                } else {
                    vec![PrefixList {
                        name: "RejPfxs".into(),
                        entries: pfx
                            .into_iter()
                            .enumerate()
                            .map(|(i, (p, permit))| PrefixListEntry {
                                seq: (i as u32 + 1) * 5,
                                action: if permit {
                                    FilterAction::Permit
                                } else {
                                    FilterAction::Deny
                                },
                                prefix: p,
                                added: false,
                            })
                            .collect(),
                    }]
                };
                RouterConfig {
                    hostname,
                    added: false,
                    interfaces,
                    ospf,
                    rip,
                    bgp,
                    prefix_lists,
                    static_routes: statics
                        .into_iter()
                        .map(|(p, nh)| StaticRoute {
                            prefix: p,
                            next_hop: Ipv4Addr::from(nh),
                            added: false,
                        })
                        .collect(),
                    extra_lines,
                }
            },
        )
}

fn arb_host() -> impl Strategy<Value = HostConfig> {
    (arb_name(), arb_prefix(), prop::collection::vec("x-[a-z0-9]{1,10}", 0..2)).prop_map(
        |(hostname, p, extra)| HostConfig {
            hostname,
            iface_name: "eth0".into(),
            address: (p.first_host(), p.len()),
            gateway: p.second_host(),
            extra,
            added: false,
        },
    )
}

/// Deterministic Fisher–Yates driven by a generated seed (the vendored
/// proptest has no shuffle strategy).
fn shuffle_lines(text: &str, mut seed: u64) -> String {
    let mut lines: Vec<&str> = text.lines().collect();
    let mut next = || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    for i in (1..lines.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        lines.swap(i, j);
    }
    let mut out = lines.join("\n");
    out.push('\n');
    out
}

proptest! {
    /// (a) No panic on byte soup, in any dialect, router or host.
    #[test]
    fn byte_soup_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        let text = String::from_utf8_lossy(&bytes).into_owned();
        for vendor in Vendor::ALL {
            let _ = parse_router_as(vendor, &text);
            let _ = parse_host_as(vendor, &text);
        }
        let _ = Vendor::sniff(&text);
    }

    /// (a) No panic on line-shuffled valid configs: stanza structure is
    /// destroyed but every line is individually well-formed, which probes
    /// the state machine's out-of-order edges.
    #[test]
    fn shuffled_valid_configs_never_panic(rc in arb_router(), seed in any::<u64>()) {
        for vendor in Vendor::ALL {
            let shuffled = shuffle_lines(&rc.emit_as(vendor), seed);
            for parse_as in Vendor::ALL {
                let _ = parse_router_as(parse_as, &shuffled);
                let _ = parse_host_as(parse_as, &shuffled);
            }
        }
    }

    /// (b) Canonical emission round-trips byte-exactly in every dialect,
    /// and the reparsed model is identical.
    #[test]
    fn router_roundtrip_is_byte_exact_in_every_dialect(rc in arb_router()) {
        for vendor in Vendor::ALL {
            let text = rc.emit_as(vendor);
            let back = parse_router_as(vendor, &text)
                .unwrap_or_else(|e| panic!("{vendor}: {e}\n{text}"));
            prop_assert_eq!(&back, &rc, "{} model round-trip", vendor);
            prop_assert_eq!(back.emit_as(vendor), text, "{} byte-exact", vendor);
        }
    }

    #[test]
    fn host_roundtrip_is_byte_exact_in_every_dialect(hc in arb_host()) {
        for vendor in Vendor::ALL {
            let text = hc.emit_as(vendor);
            let back = parse_host_as(vendor, &text)
                .unwrap_or_else(|e| panic!("{vendor}: {e}\n{text}"));
            prop_assert_eq!(&back, &hc, "{} model round-trip", vendor);
            prop_assert_eq!(back.emit_as(vendor), text, "{} byte-exact", vendor);
        }
    }

    /// (c) Cross-vendor translation is lossless: emitting with dialect A,
    /// reparsing, and emitting with dialect B recovers the same neutral
    /// model from every path.
    #[test]
    fn cross_vendor_translation_preserves_the_model(rc in arb_router()) {
        for a in Vendor::ALL {
            let via_a = parse_router_as(a, &rc.emit_as(a)).unwrap();
            prop_assert_eq!(&via_a, &rc, "{} lossless", a);
            for b in Vendor::ALL {
                let translated = parse_router_as(b, &via_a.emit_as(b)).unwrap();
                prop_assert_eq!(&translated, &rc, "{} -> {} translation", a, b);
            }
        }
    }

    /// Detection recovers the emitting dialect for any canonical config
    /// with at least one dialect-bearing line.
    #[test]
    fn sniff_recovers_the_emitting_dialect(rc in arb_router()) {
        // IOS is the tie-break default, so it is always recovered; the
        // other dialects need a line that distinguishes them.
        prop_assert_eq!(Vendor::sniff(&rc.emit_as(Vendor::Ios)), Vendor::Ios);
        prop_assert_eq!(Vendor::sniff(&rc.emit_as(Vendor::JunosSet)), Vendor::JunosSet);
        prop_assert_eq!(Vendor::sniff(&rc.emit_as(Vendor::Eos)), Vendor::Eos);
    }
}
