//! Property tests: the emitter and parser round-trip on arbitrary
//! well-formed configurations.

use confmask_config::*;
use confmask_net_types::{Asn, Ipv4Prefix};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9-]{0,8}".prop_map(|s| s)
}

fn arb_prefix() -> impl Strategy<Value = Ipv4Prefix> {
    (any::<u32>(), 8u8..=31).prop_map(|(bits, len)| {
        Ipv4Prefix::new(Ipv4Addr::from(bits), len).expect("len <= 32")
    })
}

fn arb_interface(n: usize) -> impl Strategy<Value = Interface> {
    (
        arb_prefix(),
        proptest::option::of(1u32..1000),
        proptest::option::of("[a-zA-Z0-9_-]{1,12}"),
        any::<bool>(),
    )
        .prop_map(move |(p, cost, desc, shutdown)| Interface {
            name: format!("Ethernet0/{n}"),
            address: Some((p.first_host(), p.len())),
            ospf_cost: cost,
            description: desc,
            shutdown,
            extra: vec![],
            added: false,
        })
}

fn arb_router() -> impl Strategy<Value = RouterConfig> {
    (
        arb_name(),
        prop::collection::vec(arb_prefix(), 0..4),
        prop::collection::vec(arb_prefix(), 0..3),
        proptest::option::of((1u32..65000, arb_prefix())),
    )
        .prop_map(|(hostname, ifaces, ospf_nets, bgp)| {
            let interfaces: Vec<Interface> = ifaces
                .iter()
                .enumerate()
                .map(|(n, p)| Interface::new(format!("Ethernet0/{n}"), p.first_host(), p.len()))
                .collect();
            let ospf = Some(OspfConfig {
                process_id: 1,
                networks: ospf_nets
                    .into_iter()
                    .map(|p| NetworkStatement {
                        prefix: p,
                        area: 0,
                        added: false,
                    })
                    .collect(),
                distribute_lists: vec![],
            });
            let bgp = bgp.map(|(asn, p)| BgpConfig {
                asn: Asn(asn),
                networks: vec![NetworkStatement {
                    prefix: p,
                    area: 0,
                    added: false,
                }],
                neighbors: vec![],
                distribute_lists: vec![],
            });
            RouterConfig {
                hostname,
                added: false,
                interfaces,
                ospf,
                rip: None,
                bgp,
                prefix_lists: vec![],
                static_routes: vec![],
                extra_lines: vec![],
            }
        })
}

proptest! {
    #[test]
    fn router_roundtrip(rc in arb_router()) {
        let text = rc.emit();
        let back = parse_router(&text).unwrap();
        prop_assert_eq!(rc, back);
    }

    #[test]
    fn single_interface_roundtrip(i in arb_interface(0)) {
        let rc = RouterConfig {
            hostname: "r".into(),
            added: false,
            interfaces: vec![i],
            ospf: None,
            rip: None,
            bgp: None,
            prefix_lists: vec![],
            static_routes: vec![],
            extra_lines: vec![],
        };
        let back = parse_router(&rc.emit()).unwrap();
        prop_assert_eq!(rc, back);
    }

    #[test]
    fn line_count_matches_emitted_text(rc in arb_router()) {
        let text = rc.emit();
        let nonblank = text.lines().filter(|l| !l.trim().is_empty()).count();
        prop_assert_eq!(rc.emit_line_count(), nonblank);
    }

    #[test]
    fn prefix_list_entries_roundtrip(
        prefixes in prop::collection::vec(arb_prefix(), 1..6)
    ) {
        let mut rc = RouterConfig::new("r1");
        rc.prefix_lists.push(PrefixList {
            name: "RejPfxs".into(),
            entries: prefixes
                .iter()
                .enumerate()
                .map(|(i, p)| PrefixListEntry {
                    seq: (i as u32 + 1) * 5,
                    action: if i % 2 == 0 { FilterAction::Deny } else { FilterAction::Permit },
                    prefix: *p,
                    added: false,
                })
                .collect(),
        });
        let back = parse_router(&rc.emit()).unwrap();
        prop_assert_eq!(rc, back);
    }
}
