//! Line-oriented parser for the IOS-style dialect.
//!
//! The parser is a small state machine over stanzas separated by `!` lines,
//! mirroring how real-world configuration anonymizers (NetConan, the original
//! ConfMask prototype) process files. Unrecognized lines are preserved
//! verbatim — in `Interface::extra` inside interface stanzas, or in
//! `RouterConfig::extra_lines` at the top level — so emit∘parse is lossless
//! even on files containing features the simulator does not model (e.g. the
//! QoS policy in the paper's §2.3 case study).

use crate::ast::*;
use confmask_net_types::{Asn, Ipv4Addr, Ipv4Prefix};
use std::fmt;

/// Error produced when a configuration file cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

type Result<T> = std::result::Result<T, ParseError>;

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn parse_addr(line: usize, s: &str) -> Result<Ipv4Addr> {
    s.parse()
        .map_err(|_| err(line, format!("bad IPv4 address '{s}'")))
}

enum Section {
    TopLevel,
    Interface(Interface),
    Ospf(OspfConfig),
    Rip(RipConfig),
    Bgp(BgpConfig),
}

/// Parses a router configuration file.
pub fn parse_router(text: &str) -> Result<RouterConfig> {
    let mut cfg = RouterConfig::default();
    let mut section = Section::TopLevel;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim_end();
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed == "!" {
            flush(&mut cfg, std::mem::replace(&mut section, Section::TopLevel));
            continue;
        }

        let indented = line.starts_with(' ');
        if !indented {
            // A new top-level statement implicitly closes the open stanza.
            flush(&mut cfg, std::mem::replace(&mut section, Section::TopLevel));
            section = parse_top_level(&mut cfg, lineno, trimmed)?;
        } else {
            parse_stanza_line(&mut section, &mut cfg, lineno, trimmed, line)?;
        }
    }
    flush(&mut cfg, section);
    Ok(cfg)
}

fn flush(cfg: &mut RouterConfig, section: Section) {
    match section {
        Section::TopLevel => {}
        Section::Interface(i) => cfg.interfaces.push(i),
        Section::Ospf(o) => cfg.ospf = Some(o),
        Section::Rip(r) => cfg.rip = Some(r),
        Section::Bgp(b) => cfg.bgp = Some(b),
    }
}

fn parse_top_level(cfg: &mut RouterConfig, lineno: usize, t: &str) -> Result<Section> {
    let words: Vec<&str> = t.split_whitespace().collect();
    match words.as_slice() {
        ["hostname", name] => {
            cfg.hostname = (*name).to_string();
            Ok(Section::TopLevel)
        }
        ["interface", name] => Ok(Section::Interface(Interface {
            name: (*name).to_string(),
            address: None,
            ospf_cost: None,
            description: None,
            shutdown: false,
            extra: Vec::new(),
            added: false,
        })),
        ["router", "ospf", pid] => Ok(Section::Ospf(OspfConfig {
            process_id: pid
                .parse()
                .map_err(|_| err(lineno, format!("bad OSPF process id '{pid}'")))?,
            networks: Vec::new(),
            distribute_lists: Vec::new(),
        })),
        ["router", "rip"] => Ok(Section::Rip(RipConfig {
            networks: Vec::new(),
            distribute_lists: Vec::new(),
        })),
        ["router", "bgp", asn] => Ok(Section::Bgp(BgpConfig {
            asn: Asn(asn
                .parse()
                .map_err(|_| err(lineno, format!("bad ASN '{asn}'")))?),
            networks: Vec::new(),
            neighbors: Vec::new(),
            distribute_lists: Vec::new(),
        })),
        ["ip", "route", net, mask, nh] => {
            let net = parse_addr(lineno, net)?;
            let mask = parse_addr(lineno, mask)?;
            let len = Ipv4Prefix::len_from_mask(mask)
                .map_err(|e| err(lineno, format!("bad mask: {e}")))?;
            cfg.static_routes.push(StaticRoute {
                prefix: Ipv4Prefix::new(net, len)
                    .map_err(|e| err(lineno, format!("bad network: {e}")))?,
                next_hop: parse_addr(lineno, nh)?,
                added: false,
            });
            Ok(Section::TopLevel)
        }
        ["ip", "prefix-list", name, "seq", seq, action, prefix] => {
            let action = match *action {
                "permit" => FilterAction::Permit,
                "deny" => FilterAction::Deny,
                other => return Err(err(lineno, format!("bad prefix-list action '{other}'"))),
            };
            let entry = PrefixListEntry {
                seq: seq
                    .parse()
                    .map_err(|_| err(lineno, format!("bad seq '{seq}'")))?,
                action,
                prefix: prefix
                    .parse()
                    .map_err(|e| err(lineno, format!("bad prefix: {e}")))?,
                added: false,
            };
            match cfg.prefix_lists.iter_mut().find(|p| p.name == *name) {
                Some(pl) => pl.entries.push(entry),
                None => cfg.prefix_lists.push(PrefixList {
                    name: (*name).to_string(),
                    entries: vec![entry],
                }),
            }
            Ok(Section::TopLevel)
        }
        _ => {
            cfg.extra_lines.push(t.to_string());
            Ok(Section::TopLevel)
        }
    }
}

fn parse_stanza_line(
    section: &mut Section,
    cfg: &mut RouterConfig,
    lineno: usize,
    t: &str,
    raw_line: &str,
) -> Result<()> {
    let words: Vec<&str> = t.split_whitespace().collect();
    match section {
        Section::TopLevel => {
            // Indented line outside any stanza: keep it verbatim
            // (preserving its original indentation).
            cfg.extra_lines.push(raw_line.to_string());
            Ok(())
        }
        Section::Interface(i) => match words.as_slice() {
            ["ip", "address", addr, mask] => {
                let addr = parse_addr(lineno, addr)?;
                let mask = parse_addr(lineno, mask)?;
                let len = Ipv4Prefix::len_from_mask(mask)
                    .map_err(|e| err(lineno, format!("bad mask: {e}")))?;
                i.address = Some((addr, len));
                Ok(())
            }
            ["ip", "ospf", "cost", c] => {
                i.ospf_cost =
                    Some(c.parse().map_err(|_| err(lineno, format!("bad cost '{c}'")))?);
                Ok(())
            }
            ["shutdown"] => {
                i.shutdown = true;
                Ok(())
            }
            ["description", ..] => {
                i.description = Some(t["description".len()..].trim().to_string());
                Ok(())
            }
            _ => {
                i.extra.push(t.to_string());
                Ok(())
            }
        },
        Section::Ospf(o) => match words.as_slice() {
            ["network", addr, wildcard, "area", area] => {
                let addr = parse_addr(lineno, addr)?;
                let wildcard = parse_addr(lineno, wildcard)?;
                let mask = Ipv4Addr::from(!u32::from(wildcard));
                let len = Ipv4Prefix::len_from_mask(mask)
                    .map_err(|e| err(lineno, format!("bad wildcard: {e}")))?;
                o.networks.push(NetworkStatement {
                    prefix: Ipv4Prefix::new(addr, len)
                        .map_err(|e| err(lineno, format!("bad network: {e}")))?,
                    area: area
                        .parse()
                        .map_err(|_| err(lineno, format!("bad area '{area}'")))?,
                    added: false,
                });
                Ok(())
            }
            ["distribute-list", "prefix", list, "in", iface] => {
                o.distribute_lists.push(DistributeListBinding::Interface {
                    list: (*list).to_string(),
                    interface: (*iface).to_string(),
                    added: false,
                });
                Ok(())
            }
            _ => Err(err(lineno, format!("unrecognized OSPF line '{t}'"))),
        },
        Section::Rip(r) => match words.as_slice() {
            ["version", _] => Ok(()),
            ["network", addr, mask] => {
                let addr = parse_addr(lineno, addr)?;
                let mask = parse_addr(lineno, mask)?;
                let len = Ipv4Prefix::len_from_mask(mask)
                    .map_err(|e| err(lineno, format!("bad mask: {e}")))?;
                r.networks.push(NetworkStatement {
                    prefix: Ipv4Prefix::new(addr, len)
                        .map_err(|e| err(lineno, format!("bad network: {e}")))?,
                    area: 0,
                    added: false,
                });
                Ok(())
            }
            ["distribute-list", "prefix", list, "in", iface] => {
                r.distribute_lists.push(DistributeListBinding::Interface {
                    list: (*list).to_string(),
                    interface: (*iface).to_string(),
                    added: false,
                });
                Ok(())
            }
            _ => Err(err(lineno, format!("unrecognized RIP line '{t}'"))),
        },
        Section::Bgp(b) => match words.as_slice() {
            ["network", addr, "mask", mask] => {
                let addr = parse_addr(lineno, addr)?;
                let mask = parse_addr(lineno, mask)?;
                let len = Ipv4Prefix::len_from_mask(mask)
                    .map_err(|e| err(lineno, format!("bad mask: {e}")))?;
                b.networks.push(NetworkStatement {
                    prefix: Ipv4Prefix::new(addr, len)
                        .map_err(|e| err(lineno, format!("bad network: {e}")))?,
                    area: 0,
                    added: false,
                });
                Ok(())
            }
            ["neighbor", addr, "remote-as", asn] => {
                b.neighbors.push(BgpNeighbor {
                    addr: parse_addr(lineno, addr)?,
                    remote_as: Asn(asn
                        .parse()
                        .map_err(|_| err(lineno, format!("bad ASN '{asn}'")))?),
                    local_pref: None,
                    added: false,
                });
                Ok(())
            }
            ["neighbor", addr, "local-preference", pref] => {
                let addr = parse_addr(lineno, addr)?;
                let pref: u32 = pref
                    .parse()
                    .map_err(|_| err(lineno, format!("bad local-preference '{pref}'")))?;
                match b.neighbors.iter_mut().find(|n| n.addr == addr) {
                    Some(n) => {
                        n.local_pref = Some(pref);
                        Ok(())
                    }
                    None => Err(err(
                        lineno,
                        format!("local-preference for unknown neighbor {addr}"),
                    )),
                }
            }
            ["neighbor", addr, "distribute-list", list, "in"] => {
                b.distribute_lists.push(DistributeListBinding::Neighbor {
                    list: (*list).to_string(),
                    neighbor: parse_addr(lineno, addr)?,
                    added: false,
                });
                Ok(())
            }
            _ => Err(err(lineno, format!("unrecognized BGP line '{t}'"))),
        },
    }
}

/// Parses a host configuration file.
pub fn parse_host(text: &str) -> Result<HostConfig> {
    let mut hostname = None;
    let mut iface_name = None;
    let mut address = None;
    let mut gateway = None;
    let mut extra = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let t = raw.trim();
        if t.is_empty() || t == "!" {
            continue;
        }
        let words: Vec<&str> = t.split_whitespace().collect();
        match words.as_slice() {
            ["hostname", n] => hostname = Some((*n).to_string()),
            ["interface", n] => iface_name = Some((*n).to_string()),
            ["ip", "address", a, m] => {
                let a = parse_addr(lineno, a)?;
                let m = parse_addr(lineno, m)?;
                let len = Ipv4Prefix::len_from_mask(m)
                    .map_err(|e| err(lineno, format!("bad mask: {e}")))?;
                address = Some((a, len));
            }
            ["gateway", g] => gateway = Some(parse_addr(lineno, g)?),
            _ => extra.push(t.to_string()),
        }
    }

    Ok(HostConfig {
        hostname: hostname.ok_or_else(|| err(0, "host config missing hostname"))?,
        iface_name: iface_name.unwrap_or_else(|| "eth0".to_string()),
        address: address.ok_or_else(|| err(0, "host config missing ip address"))?,
        gateway: gateway.ok_or_else(|| err(0, "host config missing gateway"))?,
        extra,
        added: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_router() {
        let text = "\
hostname c2
!
interface GigabitEthernet1/0/13
 ip address 10.25.17.25 255.255.255.254
 ip ospf cost 3
 description to-AGG3-1
 traffic-policy mark_agg31_high_priority inbound
!
router ospf 1
 network 10.25.17.24 0.0.0.1 area 0
 distribute-list prefix RejPfxs in GigabitEthernet1/0/13
!
router bgp 20
 network 10.25.0.0 mask 255.255.0.0
 neighbor 10.25.17.24 remote-as 30
 neighbor 10.25.17.24 distribute-list RejPfxs in
!
ip prefix-list RejPfxs seq 5 deny 10.9.0.0/24
ip prefix-list RejPfxs seq 10 deny 10.9.1.0/24
!
traffic classifier is_mgmt_traffic
";
        let cfg = parse_router(text).unwrap();
        assert_eq!(cfg.hostname, "c2");
        assert_eq!(cfg.interfaces.len(), 1);
        let i = &cfg.interfaces[0];
        assert_eq!(i.name, "GigabitEthernet1/0/13");
        assert_eq!(i.address, Some(("10.25.17.25".parse().unwrap(), 31)));
        assert_eq!(i.ospf_cost, Some(3));
        assert_eq!(i.description.as_deref(), Some("to-AGG3-1"));
        assert_eq!(i.extra, vec!["traffic-policy mark_agg31_high_priority inbound"]);
        let o = cfg.ospf.as_ref().unwrap();
        assert_eq!(o.networks.len(), 1);
        assert_eq!(o.networks[0].prefix, "10.25.17.24/31".parse().unwrap());
        assert_eq!(o.distribute_lists.len(), 1);
        let b = cfg.bgp.as_ref().unwrap();
        assert_eq!(b.asn, Asn(20));
        assert_eq!(b.neighbors.len(), 1);
        assert_eq!(b.distribute_lists.len(), 1);
        assert_eq!(cfg.prefix_lists.len(), 1);
        assert_eq!(cfg.prefix_lists[0].entries.len(), 2);
        assert_eq!(cfg.extra_lines, vec!["traffic classifier is_mgmt_traffic"]);
    }

    #[test]
    fn emit_parse_roundtrip() {
        let text = "\
hostname r7
!
interface Ethernet0/0
 ip address 10.0.0.2 255.255.255.254
 ip ospf cost 1
!
interface Ethernet0/1
 ip address 10.1.7.1 255.255.255.0
!
router ospf 1
 network 10.0.0.2 0.0.0.1 area 0
 network 10.1.7.0 0.0.0.255 area 0
!
";
        let cfg = parse_router(text).unwrap();
        let cfg2 = parse_router(&cfg.emit()).unwrap();
        assert_eq!(cfg, cfg2);
    }

    #[test]
    fn parses_rip() {
        let text = "\
hostname r1
!
router rip
 version 2
 network 10.0.0.0 255.255.255.254
 distribute-list prefix F in Ethernet0/0
!
";
        let cfg = parse_router(text).unwrap();
        let r = cfg.rip.as_ref().unwrap();
        assert_eq!(r.networks.len(), 1);
        assert_eq!(r.distribute_lists.len(), 1);
        let cfg2 = parse_router(&cfg.emit()).unwrap();
        assert_eq!(cfg, cfg2);
    }

    #[test]
    fn rejects_garbage_in_protocol_block() {
        let text = "hostname r1\n!\nrouter ospf 1\n frobnicate\n!\n";
        assert!(parse_router(text).is_err());
    }

    #[test]
    fn reports_line_numbers() {
        let text = "hostname r1\n!\ninterface Ethernet0/0\n ip address 999.0.0.1 255.255.255.0\n";
        let e = parse_router(text).unwrap_err();
        assert_eq!(e.line, 4);
    }

    #[test]
    fn parses_host_roundtrip() {
        let text = "hostname hA\n!\ninterface eth0\n ip address 10.1.0.100 255.255.255.0\n gateway 10.1.0.1\n!\n";
        let h = parse_host(text).unwrap();
        assert_eq!(h.hostname, "hA");
        assert_eq!(h.address, ("10.1.0.100".parse().unwrap(), 24));
        assert_eq!(h.gateway, "10.1.0.1".parse::<Ipv4Addr>().unwrap());
        let h2 = parse_host(&h.emit()).unwrap();
        assert_eq!(h, h2);
    }

    #[test]
    fn host_missing_fields_is_error() {
        assert!(parse_host("hostname h\n").is_err());
        assert!(parse_host("interface eth0\n ip address 10.0.0.1 255.255.255.0\n gateway 10.0.0.2\n").is_err());
    }

    #[test]
    fn parses_static_routes() {
        let text = "hostname r1\n!\nip route 10.5.0.0 255.255.255.0 10.0.0.1\nip route 0.0.0.0 0.0.0.0 10.0.0.2\n!\n";
        let cfg = parse_router(text).unwrap();
        assert_eq!(cfg.static_routes.len(), 2);
        assert_eq!(cfg.static_routes[0].prefix, "10.5.0.0/24".parse().unwrap());
        assert_eq!(cfg.static_routes[0].next_hop, "10.0.0.1".parse::<Ipv4Addr>().unwrap());
        assert_eq!(cfg.static_routes[1].prefix, "0.0.0.0/0".parse().unwrap());
        let back = parse_router(&cfg.emit()).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn unterminated_stanza_is_flushed() {
        let text = "hostname r1\n!\ninterface Ethernet0/0\n ip address 10.0.0.1 255.255.255.0";
        let cfg = parse_router(text).unwrap();
        assert_eq!(cfg.interfaces.len(), 1);
    }
}
