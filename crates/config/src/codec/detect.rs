//! Dialect auto-detection (`--vendor auto`).
//!
//! Heuristic per-line voting, deterministic by construction:
//!
//! * any `set ...` statement votes for `junos-set` (no other dialect has
//!   them) — a single vote decides, since IOS/EOS files never start a
//!   line with `set`;
//! * a literal `ip routing` line is a strong EOS vote, and CIDR-shaped
//!   `ip address A/L`, `ip route P NH`, `network P [area N]` lines are
//!   weak EOS votes (IOS writes dotted masks and wildcards there);
//! * anything else is IOS, the canonical default.
//!
//! Interface names containing `/` (e.g. `GigabitEthernet1/0/13`) appear
//! only in `interface X` lines, which no rule below inspects, so they
//! cannot skew the vote. Prefix-list entries use `net/len` in every
//! dialect and are likewise ignored.

use crate::codec::Vendor;

/// One line's vote: `(junos, eos)` score deltas.
fn vote(trimmed: &str) -> (u32, u32) {
    if trimmed.starts_with("set ") {
        return (1, 0);
    }
    if trimmed == "ip routing" {
        return (0, 2);
    }
    let words: Vec<&str> = trimmed.split_whitespace().collect();
    let cidr = |w: &str| w.contains('/');
    let eos = match words.as_slice() {
        ["ip", "address", a] => cidr(a),
        ["ip", "route", p, _] => cidr(p),
        ["network", p] => cidr(p),
        ["network", p, "area", _] => cidr(p),
        _ => false,
    };
    (0, eos as u32)
}

/// Guesses the dialect of one configuration file.
pub fn sniff(text: &str) -> Vendor {
    let mut junos = 0u32;
    let mut eos = 0u32;
    for line in text.lines() {
        let (j, e) = vote(line.trim());
        junos += j;
        eos += e;
    }
    if junos > 0 {
        Vendor::JunosSet
    } else if eos > 0 {
        Vendor::Eos
    } else {
        Vendor::Ios
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{codec, Vendor};
    use crate::model::{Interface, RouterConfig};

    #[test]
    fn detects_each_dialect() {
        assert_eq!(sniff("hostname r1\n!\n"), Vendor::Ios);
        assert_eq!(sniff("set system host-name r1\n"), Vendor::JunosSet);
        assert_eq!(sniff("hostname r1\n!\nip routing\n!\n"), Vendor::Eos);
        assert_eq!(
            sniff("hostname r1\n!\ninterface Ethernet1\n ip address 10.0.0.1/31\n!\n"),
            Vendor::Eos
        );
    }

    #[test]
    fn ios_interface_names_with_slashes_do_not_look_like_eos() {
        let text = "\
hostname c2
!
interface GigabitEthernet1/0/13
 ip address 10.25.17.25 255.255.255.254
!
ip prefix-list RejPfxs seq 5 deny 10.9.0.0/24
!
ip route 10.5.0.0 255.255.255.0 10.0.0.1
!
";
        assert_eq!(sniff(text), Vendor::Ios);
    }

    #[test]
    fn sniffing_canonical_emission_recovers_every_vendor() {
        let mut cfg = RouterConfig::new("r1");
        cfg.interfaces
            .push(Interface::new("Ethernet0/0", "10.0.0.1".parse().unwrap(), 31));
        for vendor in Vendor::ALL {
            let text = codec(vendor).emit_router(&cfg);
            assert_eq!(sniff(&text), vendor, "sniff(emit_{vendor})");
        }
    }
}
