//! The Arista-EOS-style codec: IOS-shaped stanzas with dialect quirks.
//!
//! EOS shares the IOS stanza structure (and therefore the IOS FSM driver
//! and most of its transition table), differing in line shapes only:
//!
//! * a top-level `ip routing` statement is always emitted right after the
//!   hostname block and recognized-but-dropped on parse (it carries no
//!   model state — the simulator always routes);
//! * interface addresses are CIDR (`ip address 10.0.0.1/31`) instead of
//!   address + mask;
//! * OSPF/RIP/BGP network statements and static routes name prefixes as
//!   `net/len` (no wildcard or subnet masks, no `mask` keyword);
//! * RIP has no `version 2` line.
//!
//! The fallback policy is identical to IOS: unknown top-level/interface
//! lines are preserved verbatim, unknown protocol-block lines rejected.

use crate::codec::fsm::{Caps, Rule, Tok};
use crate::codec::ios::{
    self, parse_addr, parse_cidr_addr, parse_prefix, parse_router_with, parse_host_with,
    Builder, HostBuilder, HostState, S,
};
use crate::codec::{ParseError, ParseStats, Vendor, VendorCodec};
use crate::model::*;
use std::fmt::Write as _;

type Result<T> = std::result::Result<T, ParseError>;

// --- EOS-specific actions (CIDR line shapes) --------------------------------

fn ip_routing(_b: &mut Builder, _c: &Caps<'_>) -> Result<()> {
    Ok(())
}

fn iface_address(b: &mut Builder, c: &Caps<'_>) -> Result<()> {
    let address = parse_cidr_addr(c.lineno, c.arg(0))?;
    b.iface(c.lineno)?.address = Some(address);
    Ok(())
}

fn ospf_network(b: &mut Builder, c: &Caps<'_>) -> Result<()> {
    let area = c.arg(1);
    let statement = NetworkStatement {
        prefix: parse_prefix(c.lineno, c.arg(0))?,
        area: area
            .parse()
            .map_err(|_| crate::codec::err(c.lineno, format!("bad area '{area}'")))?,
        added: false,
    };
    b.ospf(c.lineno)?.networks.push(statement);
    Ok(())
}

fn rip_network(b: &mut Builder, c: &Caps<'_>) -> Result<()> {
    let statement = NetworkStatement {
        prefix: parse_prefix(c.lineno, c.arg(0))?,
        area: 0,
        added: false,
    };
    b.rip(c.lineno)?.networks.push(statement);
    Ok(())
}

fn bgp_network(b: &mut Builder, c: &Caps<'_>) -> Result<()> {
    let statement = NetworkStatement {
        prefix: parse_prefix(c.lineno, c.arg(0))?,
        area: 0,
        added: false,
    };
    b.bgp(c.lineno)?.networks.push(statement);
    Ok(())
}

fn static_route(b: &mut Builder, c: &Caps<'_>) -> Result<()> {
    b.cfg.static_routes.push(StaticRoute {
        prefix: parse_prefix(c.lineno, c.arg(0))?,
        next_hop: parse_addr(c.lineno, c.arg(1))?,
        added: false,
    });
    Ok(())
}

use Tok::{Arg, Kw, Rest};

/// The EOS transition table: the IOS table with CIDR-shaped rules
/// substituted, `ip routing` accepted, and RIP's `version` rule dropped.
const ROUTER_TABLE: &[Rule<S, Builder>] = &[
    Rule { from: S::Top, pattern: &[Kw("hostname"), Arg], to: S::Top, action: ios::set_hostname },
    Rule { from: S::Top, pattern: &[Kw("ip"), Kw("routing")], to: S::Top, action: ip_routing },
    Rule { from: S::Top, pattern: &[Kw("interface"), Arg], to: S::Iface, action: ios::open_interface },
    Rule { from: S::Top, pattern: &[Kw("router"), Kw("ospf"), Arg], to: S::Ospf, action: ios::open_ospf },
    Rule { from: S::Top, pattern: &[Kw("router"), Kw("rip")], to: S::Rip, action: ios::open_rip },
    Rule { from: S::Top, pattern: &[Kw("router"), Kw("bgp"), Arg], to: S::Bgp, action: ios::open_bgp },
    Rule { from: S::Top, pattern: &[Kw("ip"), Kw("route"), Arg, Arg], to: S::Top, action: static_route },
    Rule { from: S::Top, pattern: &[Kw("ip"), Kw("prefix-list"), Arg, Kw("seq"), Arg, Arg, Arg], to: S::Top, action: ios::add_prefix_list_entry },
    Rule { from: S::Iface, pattern: &[Kw("ip"), Kw("address"), Arg], to: S::Iface, action: iface_address },
    Rule { from: S::Iface, pattern: &[Kw("ip"), Kw("ospf"), Kw("cost"), Arg], to: S::Iface, action: ios::iface_ospf_cost },
    Rule { from: S::Iface, pattern: &[Kw("shutdown")], to: S::Iface, action: ios::iface_shutdown },
    Rule { from: S::Iface, pattern: &[Kw("description"), Rest], to: S::Iface, action: ios::iface_description },
    Rule { from: S::Ospf, pattern: &[Kw("network"), Arg, Kw("area"), Arg], to: S::Ospf, action: ospf_network },
    Rule { from: S::Ospf, pattern: &[Kw("distribute-list"), Kw("prefix"), Arg, Kw("in"), Arg], to: S::Ospf, action: ios::ospf_distribute_list },
    Rule { from: S::Rip, pattern: &[Kw("network"), Arg], to: S::Rip, action: rip_network },
    Rule { from: S::Rip, pattern: &[Kw("distribute-list"), Kw("prefix"), Arg, Kw("in"), Arg], to: S::Rip, action: ios::rip_distribute_list },
    Rule { from: S::Bgp, pattern: &[Kw("network"), Arg], to: S::Bgp, action: bgp_network },
    Rule { from: S::Bgp, pattern: &[Kw("neighbor"), Arg, Kw("remote-as"), Arg], to: S::Bgp, action: ios::bgp_neighbor },
    Rule { from: S::Bgp, pattern: &[Kw("neighbor"), Arg, Kw("local-preference"), Arg], to: S::Bgp, action: ios::bgp_local_pref },
    Rule { from: S::Bgp, pattern: &[Kw("neighbor"), Arg, Kw("distribute-list"), Arg, Kw("in")], to: S::Bgp, action: ios::bgp_distribute_list },
];

// --- emission ---------------------------------------------------------------

fn emit_router(cfg: &RouterConfig) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "hostname {}", cfg.hostname);
    s.push_str("!\nip routing\n!\n");
    for i in &cfg.interfaces {
        let _ = writeln!(s, "interface {}", i.name);
        if let Some((addr, len)) = i.address {
            let _ = writeln!(s, " ip address {addr}/{len}");
        }
        if let Some(c) = i.ospf_cost {
            let _ = writeln!(s, " ip ospf cost {c}");
        }
        if let Some(d) = &i.description {
            let _ = writeln!(s, " description {d}");
        }
        if i.shutdown {
            s.push_str(" shutdown\n");
        }
        for l in &i.extra {
            let _ = writeln!(s, " {l}");
        }
        s.push_str("!\n");
    }
    if let Some(o) = &cfg.ospf {
        let _ = writeln!(s, "router ospf {}", o.process_id);
        for n in &o.networks {
            let _ = writeln!(s, " network {} area {}", n.prefix, n.area);
        }
        for d in &o.distribute_lists {
            if let DistributeListBinding::Interface { list, interface, .. } = d {
                let _ = writeln!(s, " distribute-list prefix {list} in {interface}");
            }
        }
        s.push_str("!\n");
    }
    if let Some(r) = &cfg.rip {
        s.push_str("router rip\n");
        for n in &r.networks {
            let _ = writeln!(s, " network {}", n.prefix);
        }
        for d in &r.distribute_lists {
            if let DistributeListBinding::Interface { list, interface, .. } = d {
                let _ = writeln!(s, " distribute-list prefix {list} in {interface}");
            }
        }
        s.push_str("!\n");
    }
    if let Some(b) = &cfg.bgp {
        let _ = writeln!(s, "router bgp {}", b.asn.0);
        for n in &b.networks {
            let _ = writeln!(s, " network {}", n.prefix);
        }
        for nb in &b.neighbors {
            let _ = writeln!(s, " neighbor {} remote-as {}", nb.addr, nb.remote_as.0);
            if let Some(pref) = nb.local_pref {
                let _ = writeln!(s, " neighbor {} local-preference {pref}", nb.addr);
            }
        }
        for d in &b.distribute_lists {
            if let DistributeListBinding::Neighbor { list, neighbor, .. } = d {
                let _ = writeln!(s, " neighbor {neighbor} distribute-list {list} in");
            }
        }
        s.push_str("!\n");
    }
    for pl in &cfg.prefix_lists {
        for e in &pl.entries {
            let action = match e.action {
                FilterAction::Permit => "permit",
                FilterAction::Deny => "deny",
            };
            let _ = writeln!(s, "ip prefix-list {} seq {} {} {}", pl.name, e.seq, action, e.prefix);
        }
        if !pl.entries.is_empty() {
            s.push_str("!\n");
        }
    }
    for r in &cfg.static_routes {
        let _ = writeln!(s, "ip route {} {}", r.prefix, r.next_hop);
    }
    if !cfg.static_routes.is_empty() {
        s.push_str("!\n");
    }
    for l in &cfg.extra_lines {
        s.push_str(l);
        s.push('\n');
    }
    s
}

// --- hosts ------------------------------------------------------------------

fn host_address(b: &mut HostBuilder, c: &Caps<'_>) -> Result<()> {
    b.address = Some(parse_cidr_addr(c.lineno, c.arg(0))?);
    Ok(())
}

const HOST_TABLE: &[Rule<HostState, HostBuilder>] = &[
    Rule { from: HostState, pattern: &[Kw("hostname"), Arg], to: HostState, action: ios::host_hostname },
    Rule { from: HostState, pattern: &[Kw("interface"), Arg], to: HostState, action: ios::host_interface },
    Rule { from: HostState, pattern: &[Kw("ip"), Kw("address"), Arg], to: HostState, action: host_address },
    Rule { from: HostState, pattern: &[Kw("gateway"), Arg], to: HostState, action: ios::host_gateway },
];

fn emit_host(cfg: &HostConfig) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "hostname {}", cfg.hostname);
    s.push_str("!\n");
    let _ = writeln!(s, "interface {}", cfg.iface_name);
    let (addr, len) = cfg.address;
    let _ = writeln!(s, " ip address {addr}/{len}");
    let _ = writeln!(s, " gateway {}", cfg.gateway);
    for l in &cfg.extra {
        let _ = writeln!(s, " {l}");
    }
    s.push_str("!\n");
    s
}

/// The Arista EOS codec.
pub struct EosCodec;

impl VendorCodec for EosCodec {
    fn vendor(&self) -> Vendor {
        Vendor::Eos
    }

    fn parse_router(&self, text: &str, stats: &mut ParseStats) -> Result<RouterConfig> {
        parse_router_with(ROUTER_TABLE, text, stats)
    }

    fn parse_host(&self, text: &str, stats: &mut ParseStats) -> Result<HostConfig> {
        parse_host_with(HOST_TABLE, text, stats)
    }

    fn emit_router(&self, cfg: &RouterConfig) -> String {
        emit_router(cfg)
    }

    fn emit_host(&self, cfg: &HostConfig) -> String {
        emit_host(cfg)
    }
}

#[cfg(test)]
mod tests {
    use crate::codec::{parse_host_as, parse_router_as, Vendor};
    use crate::parse_router;

    const ROUTER: &str = "\
hostname c2
!
ip routing
!
interface Ethernet1
 ip address 10.25.17.25/31
 ip ospf cost 3
 description to-AGG3-1
 traffic-policy mark inbound
!
router ospf 1
 network 10.25.17.24/31 area 0
 distribute-list prefix RejPfxs in Ethernet1
!
router bgp 20
 network 10.25.0.0/16
 neighbor 10.25.17.24 remote-as 30
 neighbor 10.25.17.24 distribute-list RejPfxs in
!
ip prefix-list RejPfxs seq 5 deny 10.9.0.0/24
!
ip route 10.5.0.0/24 10.0.0.1
!
";

    #[test]
    fn parses_and_round_trips_byte_exact() {
        let cfg = parse_router_as(Vendor::Eos, ROUTER).unwrap();
        assert_eq!(cfg.hostname, "c2");
        let i = &cfg.interfaces[0];
        assert_eq!(i.address, Some(("10.25.17.25".parse().unwrap(), 31)));
        assert_eq!(i.extra, vec!["traffic-policy mark inbound"]);
        assert_eq!(
            cfg.ospf.as_ref().unwrap().networks[0].prefix,
            "10.25.17.24/31".parse().unwrap()
        );
        assert_eq!(cfg.static_routes.len(), 1);
        assert_eq!(cfg.emit_as(Vendor::Eos), ROUTER, "byte-exact round trip");
    }

    #[test]
    fn translates_to_and_from_ios_with_an_identical_model() {
        let model = parse_router_as(Vendor::Eos, ROUTER).unwrap();
        let ios_text = model.emit_as(Vendor::Ios);
        let back = parse_router(&ios_text).unwrap();
        assert_eq!(model, back);
    }

    #[test]
    fn rip_block_has_no_version_line() {
        let text = "hostname r1\n!\nip routing\n!\nrouter rip\n network 10.0.0.0/31\n!\n";
        let cfg = parse_router_as(Vendor::Eos, text).unwrap();
        assert_eq!(cfg.rip.as_ref().unwrap().networks.len(), 1);
        assert_eq!(cfg.emit_as(Vendor::Eos), text);
        // The IOS-style `version 2` line is not part of this dialect.
        assert!(parse_router_as(Vendor::Eos, "hostname r1\n!\nrouter rip\n version 2\n!\n").is_err());
    }

    #[test]
    fn rejects_masked_address_form_in_protocol_blocks() {
        let text = "hostname r1\n!\nrouter ospf 1\n network 10.0.0.0 0.0.0.1 area 0\n!\n";
        assert!(parse_router_as(Vendor::Eos, text).is_err());
    }

    #[test]
    fn host_round_trips() {
        let text = "hostname hA\n!\ninterface eth0\n ip address 10.1.0.100/24\n gateway 10.1.0.1\n!\n";
        let h = parse_host_as(Vendor::Eos, text).unwrap();
        assert_eq!(h.address, ("10.1.0.100".parse().unwrap(), 24));
        assert_eq!(h.emit_as(Vendor::Eos), text);
    }
}
