//! The Cisco-IOS-style codec — the workspace's canonical dialect,
//! re-expressed as a table-driven FSM.
//!
//! Stanzas are separated by `!` lines (a non-indented line also closes
//! the open stanza), mirroring how real-world configuration anonymizers
//! (NetConan, the original ConfMask prototype) process files.
//! Unrecognized lines are preserved verbatim — in `Interface::extra`
//! inside interface stanzas, or in `RouterConfig::extra_lines` at the top
//! level — so emit∘parse is lossless even on files containing features
//! the simulator does not model (e.g. the QoS policy in the paper's §2.3
//! case study). Inside protocol blocks unrecognized lines are rejected:
//! a statement the routing simulation would silently ignore is a
//! correctness hazard, not an opaque extra.

use crate::codec::fsm::{step, Caps, Rule, Tok};
use crate::codec::{err, ParseError, ParseStats, Vendor, VendorCodec};
use crate::model::*;
use confmask_net_types::{Asn, Ipv4Addr, Ipv4Prefix};

type Result<T> = std::result::Result<T, ParseError>;

pub(crate) fn parse_addr(line: usize, s: &str) -> Result<Ipv4Addr> {
    s.parse()
        .map_err(|_| err(line, format!("bad IPv4 address '{s}'")))
}

/// Parses an `ADDR MASK` pair into `(addr, prefix_len)`.
pub(crate) fn parse_addr_mask(line: usize, addr: &str, mask: &str) -> Result<(Ipv4Addr, u8)> {
    let addr = parse_addr(line, addr)?;
    let mask = parse_addr(line, mask)?;
    let len = Ipv4Prefix::len_from_mask(mask).map_err(|e| err(line, format!("bad mask: {e}")))?;
    Ok((addr, len))
}

pub(crate) fn parse_prefix_mask(line: usize, addr: &str, mask: &str) -> Result<Ipv4Prefix> {
    let (addr, len) = parse_addr_mask(line, addr, mask)?;
    Ipv4Prefix::new(addr, len).map_err(|e| err(line, format!("bad network: {e}")))
}

/// Parses an `ADDR/LEN` CIDR pair into `(addr, prefix_len)` — host bits
/// are allowed, so it suits interface addresses (junos/eos dialects).
pub(crate) fn parse_cidr_addr(line: usize, s: &str) -> Result<(Ipv4Addr, u8)> {
    let (addr, len) = s
        .split_once('/')
        .ok_or_else(|| err(line, format!("bad CIDR address '{s}'")))?;
    let addr = parse_addr(line, addr)?;
    let len = len
        .parse()
        .ok()
        .filter(|l| *l <= 32)
        .ok_or_else(|| err(line, format!("bad prefix length '{len}'")))?;
    Ok((addr, len))
}

/// Parses a `NET/LEN` prefix (host bits rejected).
pub(crate) fn parse_prefix(line: usize, s: &str) -> Result<Ipv4Prefix> {
    s.parse()
        .map_err(|e| err(line, format!("bad prefix: {e}")))
}

pub(crate) fn parse_filter_action(line: usize, action: &str) -> Result<FilterAction> {
    match action {
        "permit" => Ok(FilterAction::Permit),
        "deny" => Ok(FilterAction::Deny),
        other => Err(err(line, format!("bad prefix-list action '{other}'"))),
    }
}

/// The open stanza a router builder is filling.
pub(crate) enum Section {
    TopLevel,
    Interface(Interface),
    Ospf(OspfConfig),
    Rip(RipConfig),
    Bgp(BgpConfig),
}

/// FSM states of the IOS-style router parsers (one per stanza kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum S {
    Top,
    Iface,
    Ospf,
    Rip,
    Bgp,
}

/// Router-parse builder: the config under construction plus the open
/// stanza. The FSM state and the `Section` variant move in lockstep —
/// every rule entering `S::Iface` opens `Section::Interface`, and so on.
pub(crate) struct Builder {
    pub cfg: RouterConfig,
    pub section: Section,
}

impl Builder {
    pub fn new() -> Builder {
        Builder {
            cfg: RouterConfig::default(),
            section: Section::TopLevel,
        }
    }

    /// Closes the open stanza into the config, counting it.
    pub fn flush(&mut self, stats: &mut ParseStats) {
        match std::mem::replace(&mut self.section, Section::TopLevel) {
            Section::TopLevel => return,
            Section::Interface(i) => self.cfg.interfaces.push(i),
            Section::Ospf(o) => self.cfg.ospf = Some(o),
            Section::Rip(r) => self.cfg.rip = Some(r),
            Section::Bgp(b) => self.cfg.bgp = Some(b),
        }
        stats.stanzas += 1;
    }

    pub(crate) fn iface(&mut self, lineno: usize) -> Result<&mut Interface> {
        match &mut self.section {
            Section::Interface(i) => Ok(i),
            _ => Err(err(lineno, "interface line outside an interface stanza")),
        }
    }

    pub(crate) fn ospf(&mut self, lineno: usize) -> Result<&mut OspfConfig> {
        match &mut self.section {
            Section::Ospf(o) => Ok(o),
            _ => Err(err(lineno, "OSPF line outside an OSPF stanza")),
        }
    }

    pub(crate) fn rip(&mut self, lineno: usize) -> Result<&mut RipConfig> {
        match &mut self.section {
            Section::Rip(r) => Ok(r),
            _ => Err(err(lineno, "RIP line outside a RIP stanza")),
        }
    }

    pub(crate) fn bgp(&mut self, lineno: usize) -> Result<&mut BgpConfig> {
        match &mut self.section {
            Section::Bgp(b) => Ok(b),
            _ => Err(err(lineno, "BGP line outside a BGP stanza")),
        }
    }
}

// --- per-edge actions -------------------------------------------------------

pub(crate) fn set_hostname(b: &mut Builder, c: &Caps<'_>) -> Result<()> {
    b.cfg.hostname = c.arg(0).to_string();
    Ok(())
}

pub(crate) fn open_interface(b: &mut Builder, c: &Caps<'_>) -> Result<()> {
    b.section = Section::Interface(Interface {
        name: c.arg(0).to_string(),
        address: None,
        ospf_cost: None,
        description: None,
        shutdown: false,
        extra: Vec::new(),
        added: false,
    });
    Ok(())
}

pub(crate) fn open_ospf(b: &mut Builder, c: &Caps<'_>) -> Result<()> {
    let pid = c.arg(0);
    b.section = Section::Ospf(OspfConfig {
        process_id: pid
            .parse()
            .map_err(|_| err(c.lineno, format!("bad OSPF process id '{pid}'")))?,
        networks: Vec::new(),
        distribute_lists: Vec::new(),
    });
    Ok(())
}

pub(crate) fn open_rip(b: &mut Builder, _c: &Caps<'_>) -> Result<()> {
    b.section = Section::Rip(RipConfig {
        networks: Vec::new(),
        distribute_lists: Vec::new(),
    });
    Ok(())
}

pub(crate) fn open_bgp(b: &mut Builder, c: &Caps<'_>) -> Result<()> {
    let asn = c.arg(0);
    b.section = Section::Bgp(BgpConfig {
        asn: Asn(asn
            .parse()
            .map_err(|_| err(c.lineno, format!("bad ASN '{asn}'")))?),
        networks: Vec::new(),
        neighbors: Vec::new(),
        distribute_lists: Vec::new(),
    });
    Ok(())
}

fn add_static_route(b: &mut Builder, c: &Caps<'_>) -> Result<()> {
    b.cfg.static_routes.push(StaticRoute {
        prefix: parse_prefix_mask(c.lineno, c.arg(0), c.arg(1))?,
        next_hop: parse_addr(c.lineno, c.arg(2))?,
        added: false,
    });
    Ok(())
}

pub(crate) fn add_prefix_list_entry(b: &mut Builder, c: &Caps<'_>) -> Result<()> {
    let (name, seq, action, prefix) = (c.arg(0), c.arg(1), c.arg(2), c.arg(3));
    let entry = PrefixListEntry {
        seq: seq
            .parse()
            .map_err(|_| err(c.lineno, format!("bad seq '{seq}'")))?,
        action: parse_filter_action(c.lineno, action)?,
        prefix: prefix
            .parse()
            .map_err(|e| err(c.lineno, format!("bad prefix: {e}")))?,
        added: false,
    };
    push_prefix_list_entry(&mut b.cfg, name, entry);
    Ok(())
}

pub(crate) fn push_prefix_list_entry(cfg: &mut RouterConfig, name: &str, entry: PrefixListEntry) {
    match cfg.prefix_lists.iter_mut().find(|p| p.name == name) {
        Some(pl) => pl.entries.push(entry),
        None => cfg.prefix_lists.push(PrefixList {
            name: name.to_string(),
            entries: vec![entry],
        }),
    }
}

fn iface_address(b: &mut Builder, c: &Caps<'_>) -> Result<()> {
    let address = parse_addr_mask(c.lineno, c.arg(0), c.arg(1))?;
    b.iface(c.lineno)?.address = Some(address);
    Ok(())
}

pub(crate) fn iface_ospf_cost(b: &mut Builder, c: &Caps<'_>) -> Result<()> {
    let cost = c.arg(0);
    b.iface(c.lineno)?.ospf_cost = Some(
        cost.parse()
            .map_err(|_| err(c.lineno, format!("bad cost '{cost}'")))?,
    );
    Ok(())
}

pub(crate) fn iface_shutdown(b: &mut Builder, c: &Caps<'_>) -> Result<()> {
    b.iface(c.lineno)?.shutdown = true;
    Ok(())
}

pub(crate) fn iface_description(b: &mut Builder, c: &Caps<'_>) -> Result<()> {
    let description = c.arg(0).to_string();
    b.iface(c.lineno)?.description = Some(description);
    Ok(())
}

fn ospf_network(b: &mut Builder, c: &Caps<'_>) -> Result<()> {
    let (addr, wildcard, area) = (c.arg(0), c.arg(1), c.arg(2));
    let addr = parse_addr(c.lineno, addr)?;
    let wildcard = parse_addr(c.lineno, wildcard)?;
    let mask = Ipv4Addr::from(!u32::from(wildcard));
    let len =
        Ipv4Prefix::len_from_mask(mask).map_err(|e| err(c.lineno, format!("bad wildcard: {e}")))?;
    let statement = NetworkStatement {
        prefix: Ipv4Prefix::new(addr, len)
            .map_err(|e| err(c.lineno, format!("bad network: {e}")))?,
        area: area
            .parse()
            .map_err(|_| err(c.lineno, format!("bad area '{area}'")))?,
        added: false,
    };
    b.ospf(c.lineno)?.networks.push(statement);
    Ok(())
}

pub(crate) fn ospf_distribute_list(b: &mut Builder, c: &Caps<'_>) -> Result<()> {
    let binding = DistributeListBinding::Interface {
        list: c.arg(0).to_string(),
        interface: c.arg(1).to_string(),
        added: false,
    };
    b.ospf(c.lineno)?.distribute_lists.push(binding);
    Ok(())
}

fn rip_version(_b: &mut Builder, _c: &Caps<'_>) -> Result<()> {
    Ok(())
}

fn rip_network(b: &mut Builder, c: &Caps<'_>) -> Result<()> {
    let statement = NetworkStatement {
        prefix: parse_prefix_mask(c.lineno, c.arg(0), c.arg(1))?,
        area: 0,
        added: false,
    };
    b.rip(c.lineno)?.networks.push(statement);
    Ok(())
}

pub(crate) fn rip_distribute_list(b: &mut Builder, c: &Caps<'_>) -> Result<()> {
    let binding = DistributeListBinding::Interface {
        list: c.arg(0).to_string(),
        interface: c.arg(1).to_string(),
        added: false,
    };
    b.rip(c.lineno)?.distribute_lists.push(binding);
    Ok(())
}

fn bgp_network(b: &mut Builder, c: &Caps<'_>) -> Result<()> {
    let statement = NetworkStatement {
        prefix: parse_prefix_mask(c.lineno, c.arg(0), c.arg(1))?,
        area: 0,
        added: false,
    };
    b.bgp(c.lineno)?.networks.push(statement);
    Ok(())
}

pub(crate) fn bgp_neighbor(b: &mut Builder, c: &Caps<'_>) -> Result<()> {
    let (addr, asn) = (c.arg(0), c.arg(1));
    let neighbor = BgpNeighbor {
        addr: parse_addr(c.lineno, addr)?,
        remote_as: Asn(asn
            .parse()
            .map_err(|_| err(c.lineno, format!("bad ASN '{asn}'")))?),
        local_pref: None,
        added: false,
    };
    b.bgp(c.lineno)?.neighbors.push(neighbor);
    Ok(())
}

pub(crate) fn bgp_local_pref(b: &mut Builder, c: &Caps<'_>) -> Result<()> {
    let addr = parse_addr(c.lineno, c.arg(0))?;
    let pref = c.arg(1);
    let pref: u32 = pref
        .parse()
        .map_err(|_| err(c.lineno, format!("bad local-preference '{pref}'")))?;
    set_neighbor_local_pref(b.bgp(c.lineno)?, c.lineno, addr, pref)
}

pub(crate) fn set_neighbor_local_pref(
    bgp: &mut BgpConfig,
    lineno: usize,
    addr: Ipv4Addr,
    pref: u32,
) -> Result<()> {
    match bgp.neighbors.iter_mut().find(|n| n.addr == addr) {
        Some(n) => {
            n.local_pref = Some(pref);
            Ok(())
        }
        None => Err(err(
            lineno,
            format!("local-preference for unknown neighbor {addr}"),
        )),
    }
}

pub(crate) fn bgp_distribute_list(b: &mut Builder, c: &Caps<'_>) -> Result<()> {
    let binding = DistributeListBinding::Neighbor {
        list: c.arg(1).to_string(),
        neighbor: parse_addr(c.lineno, c.arg(0))?,
        added: false,
    };
    b.bgp(c.lineno)?.distribute_lists.push(binding);
    Ok(())
}

use Tok::{Arg, Kw, Rest};

/// The IOS router transition table. Rules from `S::Top` open stanzas (or
/// record one-line top-level statements); the other states stay within
/// their stanza until the driver flushes it.
const ROUTER_TABLE: &[Rule<S, Builder>] = &[
    Rule { from: S::Top, pattern: &[Kw("hostname"), Arg], to: S::Top, action: set_hostname },
    Rule { from: S::Top, pattern: &[Kw("interface"), Arg], to: S::Iface, action: open_interface },
    Rule { from: S::Top, pattern: &[Kw("router"), Kw("ospf"), Arg], to: S::Ospf, action: open_ospf },
    Rule { from: S::Top, pattern: &[Kw("router"), Kw("rip")], to: S::Rip, action: open_rip },
    Rule { from: S::Top, pattern: &[Kw("router"), Kw("bgp"), Arg], to: S::Bgp, action: open_bgp },
    Rule { from: S::Top, pattern: &[Kw("ip"), Kw("route"), Arg, Arg, Arg], to: S::Top, action: add_static_route },
    Rule { from: S::Top, pattern: &[Kw("ip"), Kw("prefix-list"), Arg, Kw("seq"), Arg, Arg, Arg], to: S::Top, action: add_prefix_list_entry },
    Rule { from: S::Iface, pattern: &[Kw("ip"), Kw("address"), Arg, Arg], to: S::Iface, action: iface_address },
    Rule { from: S::Iface, pattern: &[Kw("ip"), Kw("ospf"), Kw("cost"), Arg], to: S::Iface, action: iface_ospf_cost },
    Rule { from: S::Iface, pattern: &[Kw("shutdown")], to: S::Iface, action: iface_shutdown },
    Rule { from: S::Iface, pattern: &[Kw("description"), Rest], to: S::Iface, action: iface_description },
    Rule { from: S::Ospf, pattern: &[Kw("network"), Arg, Arg, Kw("area"), Arg], to: S::Ospf, action: ospf_network },
    Rule { from: S::Ospf, pattern: &[Kw("distribute-list"), Kw("prefix"), Arg, Kw("in"), Arg], to: S::Ospf, action: ospf_distribute_list },
    Rule { from: S::Rip, pattern: &[Kw("version"), Arg], to: S::Rip, action: rip_version },
    Rule { from: S::Rip, pattern: &[Kw("network"), Arg, Arg], to: S::Rip, action: rip_network },
    Rule { from: S::Rip, pattern: &[Kw("distribute-list"), Kw("prefix"), Arg, Kw("in"), Arg], to: S::Rip, action: rip_distribute_list },
    Rule { from: S::Bgp, pattern: &[Kw("network"), Arg, Kw("mask"), Arg], to: S::Bgp, action: bgp_network },
    Rule { from: S::Bgp, pattern: &[Kw("neighbor"), Arg, Kw("remote-as"), Arg], to: S::Bgp, action: bgp_neighbor },
    Rule { from: S::Bgp, pattern: &[Kw("neighbor"), Arg, Kw("local-preference"), Arg], to: S::Bgp, action: bgp_local_pref },
    Rule { from: S::Bgp, pattern: &[Kw("neighbor"), Arg, Kw("distribute-list"), Arg, Kw("in")], to: S::Bgp, action: bgp_distribute_list },
];

/// Fallback policy for a line no rule matched: preserve verbatim at the
/// top level and inside interfaces, reject inside protocol blocks.
fn fallback(
    state: S,
    b: &mut Builder,
    trimmed: &str,
    line: &str,
    lineno: usize,
    stats: &mut ParseStats,
) -> Result<()> {
    match state {
        S::Top => {
            // Indented line outside any stanza: keep it verbatim
            // (preserving its original indentation).
            b.cfg.extra_lines.push(line.to_string());
        }
        S::Iface => b.iface(lineno)?.extra.push(trimmed.to_string()),
        S::Ospf => return Err(err(lineno, format!("unrecognized OSPF line '{trimmed}'"))),
        S::Rip => return Err(err(lineno, format!("unrecognized RIP line '{trimmed}'"))),
        S::Bgp => return Err(err(lineno, format!("unrecognized BGP line '{trimmed}'"))),
    }
    stats.unrecognized += 1;
    Ok(())
}

/// Shared stanza-style driver: `!` or a new non-indented statement
/// closes the open stanza; per-state fallback applies to unmatched lines.
pub(crate) fn parse_router_with(
    table: &[Rule<S, Builder>],
    text: &str,
    stats: &mut ParseStats,
) -> Result<RouterConfig> {
    let mut b = Builder::new();
    let mut state = S::Top;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim_end();
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        stats.lines += 1;
        if trimmed == "!" {
            b.flush(stats);
            state = S::Top;
            continue;
        }
        if !line.starts_with(' ') {
            // A new top-level statement implicitly closes the open stanza.
            b.flush(stats);
            state = S::Top;
            match step(table, S::Top, trimmed, lineno, &mut b)? {
                Some(next) => state = next,
                None => {
                    b.cfg.extra_lines.push(trimmed.to_string());
                    stats.unrecognized += 1;
                }
            }
        } else {
            match step(table, state, trimmed, lineno, &mut b)? {
                Some(next) => state = next,
                None => fallback(state, &mut b, trimmed, line, lineno, stats)?,
            }
        }
    }
    b.flush(stats);
    Ok(b.cfg)
}

// --- host parsing -----------------------------------------------------------

/// Host-parse builder shared by the IOS-like codecs.
#[derive(Default)]
pub(crate) struct HostBuilder {
    pub hostname: Option<String>,
    pub iface_name: Option<String>,
    pub address: Option<(Ipv4Addr, u8)>,
    pub gateway: Option<Ipv4Addr>,
    pub extra: Vec<String>,
}

impl HostBuilder {
    /// Finishes the build, rejecting configs missing a required field.
    pub fn finish(self) -> Result<HostConfig> {
        Ok(HostConfig {
            hostname: self
                .hostname
                .ok_or_else(|| err(0, "host config missing hostname"))?,
            iface_name: self.iface_name.unwrap_or_else(|| "eth0".to_string()),
            address: self
                .address
                .ok_or_else(|| err(0, "host config missing ip address"))?,
            gateway: self
                .gateway
                .ok_or_else(|| err(0, "host config missing gateway"))?,
            extra: self.extra,
            added: false,
        })
    }
}

/// Single state of the host FSMs (host files have no stanzas to track).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct HostState;

pub(crate) fn host_hostname(b: &mut HostBuilder, c: &Caps<'_>) -> Result<()> {
    b.hostname = Some(c.arg(0).to_string());
    Ok(())
}

pub(crate) fn host_interface(b: &mut HostBuilder, c: &Caps<'_>) -> Result<()> {
    b.iface_name = Some(c.arg(0).to_string());
    Ok(())
}

fn host_address(b: &mut HostBuilder, c: &Caps<'_>) -> Result<()> {
    b.address = Some(parse_addr_mask(c.lineno, c.arg(0), c.arg(1))?);
    Ok(())
}

pub(crate) fn host_gateway(b: &mut HostBuilder, c: &Caps<'_>) -> Result<()> {
    b.gateway = Some(parse_addr(c.lineno, c.arg(0))?);
    Ok(())
}

const HOST_TABLE: &[Rule<HostState, HostBuilder>] = &[
    Rule { from: HostState, pattern: &[Kw("hostname"), Arg], to: HostState, action: host_hostname },
    Rule { from: HostState, pattern: &[Kw("interface"), Arg], to: HostState, action: host_interface },
    Rule { from: HostState, pattern: &[Kw("ip"), Kw("address"), Arg, Arg], to: HostState, action: host_address },
    Rule { from: HostState, pattern: &[Kw("gateway"), Arg], to: HostState, action: host_gateway },
];

/// Shared host-parse driver: a flat single-state FSM where any
/// unrecognized line becomes a preserved extra.
pub(crate) fn parse_host_with(
    table: &[Rule<HostState, HostBuilder>],
    text: &str,
    stats: &mut ParseStats,
) -> Result<HostConfig> {
    let mut b = HostBuilder::default();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let t = raw.trim();
        if t.is_empty() || t == "!" {
            continue;
        }
        stats.lines += 1;
        if step(table, HostState, t, lineno, &mut b)?.is_none() {
            b.extra.push(t.to_string());
            stats.unrecognized += 1;
        }
    }
    b.finish()
}

/// The IOS codec.
pub struct IosCodec;

impl VendorCodec for IosCodec {
    fn vendor(&self) -> Vendor {
        Vendor::Ios
    }

    fn parse_router(&self, text: &str, stats: &mut ParseStats) -> Result<RouterConfig> {
        parse_router_with(ROUTER_TABLE, text, stats)
    }

    fn parse_host(&self, text: &str, stats: &mut ParseStats) -> Result<HostConfig> {
        parse_host_with(HOST_TABLE, text, stats)
    }

    fn emit_router(&self, cfg: &RouterConfig) -> String {
        cfg.emit()
    }

    fn emit_host(&self, cfg: &HostConfig) -> String {
        cfg.emit()
    }
}

#[cfg(test)]
mod tests {
    use crate::{parse_host, parse_router};
    use confmask_net_types::{Asn, Ipv4Addr};

    #[test]
    fn parses_full_router() {
        let text = "\
hostname c2
!
interface GigabitEthernet1/0/13
 ip address 10.25.17.25 255.255.255.254
 ip ospf cost 3
 description to-AGG3-1
 traffic-policy mark_agg31_high_priority inbound
!
router ospf 1
 network 10.25.17.24 0.0.0.1 area 0
 distribute-list prefix RejPfxs in GigabitEthernet1/0/13
!
router bgp 20
 network 10.25.0.0 mask 255.255.0.0
 neighbor 10.25.17.24 remote-as 30
 neighbor 10.25.17.24 distribute-list RejPfxs in
!
ip prefix-list RejPfxs seq 5 deny 10.9.0.0/24
ip prefix-list RejPfxs seq 10 deny 10.9.1.0/24
!
traffic classifier is_mgmt_traffic
";
        let cfg = parse_router(text).unwrap();
        assert_eq!(cfg.hostname, "c2");
        assert_eq!(cfg.interfaces.len(), 1);
        let i = &cfg.interfaces[0];
        assert_eq!(i.name, "GigabitEthernet1/0/13");
        assert_eq!(i.address, Some(("10.25.17.25".parse().unwrap(), 31)));
        assert_eq!(i.ospf_cost, Some(3));
        assert_eq!(i.description.as_deref(), Some("to-AGG3-1"));
        assert_eq!(i.extra, vec!["traffic-policy mark_agg31_high_priority inbound"]);
        let o = cfg.ospf.as_ref().unwrap();
        assert_eq!(o.networks.len(), 1);
        assert_eq!(o.networks[0].prefix, "10.25.17.24/31".parse().unwrap());
        assert_eq!(o.distribute_lists.len(), 1);
        let b = cfg.bgp.as_ref().unwrap();
        assert_eq!(b.asn, Asn(20));
        assert_eq!(b.neighbors.len(), 1);
        assert_eq!(b.distribute_lists.len(), 1);
        assert_eq!(cfg.prefix_lists.len(), 1);
        assert_eq!(cfg.prefix_lists[0].entries.len(), 2);
        assert_eq!(cfg.extra_lines, vec!["traffic classifier is_mgmt_traffic"]);
    }

    #[test]
    fn emit_parse_roundtrip() {
        let text = "\
hostname r7
!
interface Ethernet0/0
 ip address 10.0.0.2 255.255.255.254
 ip ospf cost 1
!
interface Ethernet0/1
 ip address 10.1.7.1 255.255.255.0
!
router ospf 1
 network 10.0.0.2 0.0.0.1 area 0
 network 10.1.7.0 0.0.0.255 area 0
!
";
        let cfg = parse_router(text).unwrap();
        let cfg2 = parse_router(&cfg.emit()).unwrap();
        assert_eq!(cfg, cfg2);
    }

    #[test]
    fn parses_rip() {
        let text = "\
hostname r1
!
router rip
 version 2
 network 10.0.0.0 255.255.255.254
 distribute-list prefix F in Ethernet0/0
!
";
        let cfg = parse_router(text).unwrap();
        let r = cfg.rip.as_ref().unwrap();
        assert_eq!(r.networks.len(), 1);
        assert_eq!(r.distribute_lists.len(), 1);
        let cfg2 = parse_router(&cfg.emit()).unwrap();
        assert_eq!(cfg, cfg2);
    }

    #[test]
    fn rejects_garbage_in_protocol_block() {
        let text = "hostname r1\n!\nrouter ospf 1\n frobnicate\n!\n";
        assert!(parse_router(text).is_err());
    }

    #[test]
    fn reports_line_numbers() {
        let text = "hostname r1\n!\ninterface Ethernet0/0\n ip address 999.0.0.1 255.255.255.0\n";
        let e = parse_router(text).unwrap_err();
        assert_eq!(e.line, 4);
    }

    #[test]
    fn parses_host_roundtrip() {
        let text = "hostname hA\n!\ninterface eth0\n ip address 10.1.0.100 255.255.255.0\n gateway 10.1.0.1\n!\n";
        let h = parse_host(text).unwrap();
        assert_eq!(h.hostname, "hA");
        assert_eq!(h.address, ("10.1.0.100".parse().unwrap(), 24));
        assert_eq!(h.gateway, "10.1.0.1".parse::<Ipv4Addr>().unwrap());
        let h2 = parse_host(&h.emit()).unwrap();
        assert_eq!(h, h2);
    }

    #[test]
    fn host_missing_fields_is_error() {
        assert!(parse_host("hostname h\n").is_err());
        assert!(parse_host("interface eth0\n ip address 10.0.0.1 255.255.255.0\n gateway 10.0.0.2\n").is_err());
    }

    #[test]
    fn parses_static_routes() {
        let text = "hostname r1\n!\nip route 10.5.0.0 255.255.255.0 10.0.0.1\nip route 0.0.0.0 0.0.0.0 10.0.0.2\n!\n";
        let cfg = parse_router(text).unwrap();
        assert_eq!(cfg.static_routes.len(), 2);
        assert_eq!(cfg.static_routes[0].prefix, "10.5.0.0/24".parse().unwrap());
        assert_eq!(cfg.static_routes[0].next_hop, "10.0.0.1".parse::<Ipv4Addr>().unwrap());
        assert_eq!(cfg.static_routes[1].prefix, "0.0.0.0/0".parse().unwrap());
        let back = parse_router(&cfg.emit()).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn unterminated_stanza_is_flushed() {
        let text = "hostname r1\n!\ninterface Ethernet0/0\n ip address 10.0.0.1 255.255.255.0";
        let cfg = parse_router(text).unwrap();
        assert_eq!(cfg.interfaces.len(), 1);
    }
}
