//! The Juniper flat `set ...` statement codec (`junos-set`).
//!
//! Every statement is one `set <path> <value>` line — there are no
//! stanzas, so the FSM has a single state and containers (interfaces,
//! BGP neighbors, protocol blocks) are created on first mention, in
//! encounter order. Emission is canonical (hostname, interfaces,
//! protocols, policy-options, routing-options, then preserved extras),
//! and the parser rebuilds exactly that order from a canonical file, so
//! `parse → model → emit` is byte-exact. Lines that match no rule —
//! including non-`set` lines — are preserved verbatim in
//! `RouterConfig::extra_lines` and re-emitted last.
//!
//! Dialect notes: an interface that would otherwise emit nothing is
//! pinned with a bare `set interfaces <name>` line, and an empty RIP
//! block with a bare `set protocols rip` line, so vendor translation
//! never drops model structure. Interface extras travel as
//! `set interfaces <name> extra <line>`, keeping them attached to their
//! interface.

use crate::codec::fsm::{step, Caps, Rule, Tok};
use crate::codec::ios::{
    parse_addr, parse_cidr_addr, parse_filter_action, parse_prefix, push_prefix_list_entry,
    set_neighbor_local_pref, HostBuilder, HostState,
};
use crate::codec::{err, ParseError, ParseStats, Vendor, VendorCodec};
use crate::model::*;
use confmask_net_types::Asn;
use std::fmt::Write as _;

type Result<T> = std::result::Result<T, ParseError>;

/// Single FSM state: the `set` grammar is flat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Flat;

/// Router-parse builder: containers are created on first mention.
struct Builder {
    cfg: RouterConfig,
}

impl Builder {
    fn iface(&mut self, name: &str) -> &mut Interface {
        let idx = match self.cfg.interfaces.iter().position(|i| i.name == name) {
            Some(idx) => idx,
            None => {
                self.cfg.interfaces.push(Interface {
                    name: name.to_string(),
                    address: None,
                    ospf_cost: None,
                    description: None,
                    shutdown: false,
                    extra: Vec::new(),
                    added: false,
                });
                self.cfg.interfaces.len() - 1
            }
        };
        &mut self.cfg.interfaces[idx]
    }

    fn ospf(&mut self) -> &mut OspfConfig {
        self.cfg.ospf.get_or_insert_with(|| OspfConfig {
            process_id: 1,
            networks: Vec::new(),
            distribute_lists: Vec::new(),
        })
    }

    fn rip(&mut self) -> &mut RipConfig {
        self.cfg.rip.get_or_insert_with(|| RipConfig {
            networks: Vec::new(),
            distribute_lists: Vec::new(),
        })
    }

    fn bgp(&mut self) -> &mut BgpConfig {
        self.cfg.bgp.get_or_insert_with(|| BgpConfig {
            asn: Asn(0),
            networks: Vec::new(),
            neighbors: Vec::new(),
            distribute_lists: Vec::new(),
        })
    }
}

// --- per-edge actions -------------------------------------------------------

fn set_hostname(b: &mut Builder, c: &Caps<'_>) -> Result<()> {
    b.cfg.hostname = c.arg(0).to_string();
    Ok(())
}

fn iface_pin(b: &mut Builder, c: &Caps<'_>) -> Result<()> {
    b.iface(c.arg(0));
    Ok(())
}

fn iface_address(b: &mut Builder, c: &Caps<'_>) -> Result<()> {
    let address = parse_cidr_addr(c.lineno, c.arg(1))?;
    b.iface(c.arg(0)).address = Some(address);
    Ok(())
}

fn iface_ospf_cost(b: &mut Builder, c: &Caps<'_>) -> Result<()> {
    let cost = c.arg(1);
    let cost = cost
        .parse()
        .map_err(|_| err(c.lineno, format!("bad cost '{cost}'")))?;
    b.iface(c.arg(0)).ospf_cost = Some(cost);
    Ok(())
}

fn iface_description(b: &mut Builder, c: &Caps<'_>) -> Result<()> {
    let description = c.arg(1).to_string();
    b.iface(c.arg(0)).description = Some(description);
    Ok(())
}

fn iface_disable(b: &mut Builder, c: &Caps<'_>) -> Result<()> {
    b.iface(c.arg(0)).shutdown = true;
    Ok(())
}

fn iface_extra(b: &mut Builder, c: &Caps<'_>) -> Result<()> {
    let line = c.arg(1).to_string();
    b.iface(c.arg(0)).extra.push(line);
    Ok(())
}

fn ospf_process(b: &mut Builder, c: &Caps<'_>) -> Result<()> {
    let pid = c.arg(0);
    b.ospf().process_id = pid
        .parse()
        .map_err(|_| err(c.lineno, format!("bad OSPF process id '{pid}'")))?;
    Ok(())
}

fn ospf_network(b: &mut Builder, c: &Caps<'_>) -> Result<()> {
    let (prefix, area) = (c.arg(0), c.arg(1));
    let statement = NetworkStatement {
        prefix: parse_prefix(c.lineno, prefix)?,
        area: area
            .parse()
            .map_err(|_| err(c.lineno, format!("bad area '{area}'")))?,
        added: false,
    };
    b.ospf().networks.push(statement);
    Ok(())
}

fn ospf_distribute_list(b: &mut Builder, c: &Caps<'_>) -> Result<()> {
    let binding = DistributeListBinding::Interface {
        list: c.arg(0).to_string(),
        interface: c.arg(1).to_string(),
        added: false,
    };
    b.ospf().distribute_lists.push(binding);
    Ok(())
}

fn rip_pin(b: &mut Builder, _c: &Caps<'_>) -> Result<()> {
    b.rip();
    Ok(())
}

fn rip_network(b: &mut Builder, c: &Caps<'_>) -> Result<()> {
    let statement = NetworkStatement {
        prefix: parse_prefix(c.lineno, c.arg(0))?,
        area: 0,
        added: false,
    };
    b.rip().networks.push(statement);
    Ok(())
}

fn rip_distribute_list(b: &mut Builder, c: &Caps<'_>) -> Result<()> {
    let binding = DistributeListBinding::Interface {
        list: c.arg(0).to_string(),
        interface: c.arg(1).to_string(),
        added: false,
    };
    b.rip().distribute_lists.push(binding);
    Ok(())
}

fn bgp_local_as(b: &mut Builder, c: &Caps<'_>) -> Result<()> {
    let asn = c.arg(0);
    b.bgp().asn = Asn(asn
        .parse()
        .map_err(|_| err(c.lineno, format!("bad ASN '{asn}'")))?);
    Ok(())
}

fn bgp_network(b: &mut Builder, c: &Caps<'_>) -> Result<()> {
    let statement = NetworkStatement {
        prefix: parse_prefix(c.lineno, c.arg(0))?,
        area: 0,
        added: false,
    };
    b.bgp().networks.push(statement);
    Ok(())
}

fn bgp_neighbor(b: &mut Builder, c: &Caps<'_>) -> Result<()> {
    let (addr, asn) = (c.arg(0), c.arg(1));
    let neighbor = BgpNeighbor {
        addr: parse_addr(c.lineno, addr)?,
        remote_as: Asn(asn
            .parse()
            .map_err(|_| err(c.lineno, format!("bad ASN '{asn}'")))?),
        local_pref: None,
        added: false,
    };
    b.bgp().neighbors.push(neighbor);
    Ok(())
}

fn bgp_local_pref(b: &mut Builder, c: &Caps<'_>) -> Result<()> {
    let addr = parse_addr(c.lineno, c.arg(0))?;
    let pref = c.arg(1);
    let pref: u32 = pref
        .parse()
        .map_err(|_| err(c.lineno, format!("bad local-preference '{pref}'")))?;
    set_neighbor_local_pref(b.bgp(), c.lineno, addr, pref)
}

fn bgp_distribute_list(b: &mut Builder, c: &Caps<'_>) -> Result<()> {
    let binding = DistributeListBinding::Neighbor {
        list: c.arg(1).to_string(),
        neighbor: parse_addr(c.lineno, c.arg(0))?,
        added: false,
    };
    b.bgp().distribute_lists.push(binding);
    Ok(())
}

fn prefix_list_entry(b: &mut Builder, c: &Caps<'_>) -> Result<()> {
    let (name, seq, action, prefix) = (c.arg(0), c.arg(1), c.arg(2), c.arg(3));
    let entry = PrefixListEntry {
        seq: seq
            .parse()
            .map_err(|_| err(c.lineno, format!("bad seq '{seq}'")))?,
        action: parse_filter_action(c.lineno, action)?,
        prefix: parse_prefix(c.lineno, prefix)?,
        added: false,
    };
    push_prefix_list_entry(&mut b.cfg, name, entry);
    Ok(())
}

fn static_route(b: &mut Builder, c: &Caps<'_>) -> Result<()> {
    b.cfg.static_routes.push(StaticRoute {
        prefix: parse_prefix(c.lineno, c.arg(0))?,
        next_hop: parse_addr(c.lineno, c.arg(1))?,
        added: false,
    });
    Ok(())
}

use Tok::{Arg, Kw, Rest};

const ROUTER_TABLE: &[Rule<Flat, Builder>] = &[
    Rule { from: Flat, pattern: &[Kw("set"), Kw("system"), Kw("host-name"), Arg], to: Flat, action: set_hostname },
    Rule { from: Flat, pattern: &[Kw("set"), Kw("interfaces"), Arg], to: Flat, action: iface_pin },
    Rule { from: Flat, pattern: &[Kw("set"), Kw("interfaces"), Arg, Kw("address"), Arg], to: Flat, action: iface_address },
    Rule { from: Flat, pattern: &[Kw("set"), Kw("interfaces"), Arg, Kw("ospf-cost"), Arg], to: Flat, action: iface_ospf_cost },
    Rule { from: Flat, pattern: &[Kw("set"), Kw("interfaces"), Arg, Kw("description"), Rest], to: Flat, action: iface_description },
    Rule { from: Flat, pattern: &[Kw("set"), Kw("interfaces"), Arg, Kw("disable")], to: Flat, action: iface_disable },
    Rule { from: Flat, pattern: &[Kw("set"), Kw("interfaces"), Arg, Kw("extra"), Rest], to: Flat, action: iface_extra },
    Rule { from: Flat, pattern: &[Kw("set"), Kw("protocols"), Kw("ospf"), Kw("process"), Arg], to: Flat, action: ospf_process },
    Rule { from: Flat, pattern: &[Kw("set"), Kw("protocols"), Kw("ospf"), Kw("network"), Arg, Kw("area"), Arg], to: Flat, action: ospf_network },
    Rule { from: Flat, pattern: &[Kw("set"), Kw("protocols"), Kw("ospf"), Kw("distribute-list"), Arg, Kw("interface"), Arg], to: Flat, action: ospf_distribute_list },
    Rule { from: Flat, pattern: &[Kw("set"), Kw("protocols"), Kw("rip")], to: Flat, action: rip_pin },
    Rule { from: Flat, pattern: &[Kw("set"), Kw("protocols"), Kw("rip"), Kw("network"), Arg], to: Flat, action: rip_network },
    Rule { from: Flat, pattern: &[Kw("set"), Kw("protocols"), Kw("rip"), Kw("distribute-list"), Arg, Kw("interface"), Arg], to: Flat, action: rip_distribute_list },
    Rule { from: Flat, pattern: &[Kw("set"), Kw("protocols"), Kw("bgp"), Kw("local-as"), Arg], to: Flat, action: bgp_local_as },
    Rule { from: Flat, pattern: &[Kw("set"), Kw("protocols"), Kw("bgp"), Kw("network"), Arg], to: Flat, action: bgp_network },
    Rule { from: Flat, pattern: &[Kw("set"), Kw("protocols"), Kw("bgp"), Kw("neighbor"), Arg, Kw("remote-as"), Arg], to: Flat, action: bgp_neighbor },
    Rule { from: Flat, pattern: &[Kw("set"), Kw("protocols"), Kw("bgp"), Kw("neighbor"), Arg, Kw("local-preference"), Arg], to: Flat, action: bgp_local_pref },
    Rule { from: Flat, pattern: &[Kw("set"), Kw("protocols"), Kw("bgp"), Kw("neighbor"), Arg, Kw("distribute-list"), Arg], to: Flat, action: bgp_distribute_list },
    Rule { from: Flat, pattern: &[Kw("set"), Kw("policy-options"), Kw("prefix-list"), Arg, Kw("seq"), Arg, Arg, Arg], to: Flat, action: prefix_list_entry },
    Rule { from: Flat, pattern: &[Kw("set"), Kw("routing-options"), Kw("static"), Kw("route"), Arg, Kw("next-hop"), Arg], to: Flat, action: static_route },
];

fn parse_router(text: &str, stats: &mut ParseStats) -> Result<RouterConfig> {
    let mut b = Builder {
        cfg: RouterConfig::default(),
    };
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let t = raw.trim();
        if t.is_empty() {
            continue;
        }
        stats.lines += 1;
        if step(ROUTER_TABLE, Flat, t, lineno, &mut b)?.is_none() {
            // Preserve the raw line (indentation included), mirroring the
            // IOS top-level fallback, so foreign boilerplate survives a
            // junos round-trip byte-for-byte.
            b.cfg.extra_lines.push(raw.to_string());
            stats.unrecognized += 1;
        }
    }
    Ok(b.cfg)
}

// --- emission ---------------------------------------------------------------

fn emit_router(cfg: &RouterConfig) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "set system host-name {}", cfg.hostname);
    for i in &cfg.interfaces {
        let mut emitted = false;
        if let Some((addr, len)) = i.address {
            let _ = writeln!(s, "set interfaces {} address {addr}/{len}", i.name);
            emitted = true;
        }
        if let Some(c) = i.ospf_cost {
            let _ = writeln!(s, "set interfaces {} ospf-cost {c}", i.name);
            emitted = true;
        }
        if let Some(d) = &i.description {
            let _ = writeln!(s, "set interfaces {} description {d}", i.name);
            emitted = true;
        }
        if i.shutdown {
            let _ = writeln!(s, "set interfaces {} disable", i.name);
            emitted = true;
        }
        for l in &i.extra {
            let _ = writeln!(s, "set interfaces {} extra {l}", i.name);
            emitted = true;
        }
        if !emitted {
            // Pin the interface so translation never drops it.
            let _ = writeln!(s, "set interfaces {}", i.name);
        }
    }
    if let Some(o) = &cfg.ospf {
        let _ = writeln!(s, "set protocols ospf process {}", o.process_id);
        for n in &o.networks {
            let _ = writeln!(s, "set protocols ospf network {} area {}", n.prefix, n.area);
        }
        for d in &o.distribute_lists {
            if let DistributeListBinding::Interface { list, interface, .. } = d {
                let _ = writeln!(s, "set protocols ospf distribute-list {list} interface {interface}");
            }
        }
    }
    if let Some(r) = &cfg.rip {
        if r.networks.is_empty() && r.distribute_lists.is_empty() {
            s.push_str("set protocols rip\n");
        }
        for n in &r.networks {
            let _ = writeln!(s, "set protocols rip network {}", n.prefix);
        }
        for d in &r.distribute_lists {
            if let DistributeListBinding::Interface { list, interface, .. } = d {
                let _ = writeln!(s, "set protocols rip distribute-list {list} interface {interface}");
            }
        }
    }
    if let Some(b) = &cfg.bgp {
        let _ = writeln!(s, "set protocols bgp local-as {}", b.asn.0);
        for n in &b.networks {
            let _ = writeln!(s, "set protocols bgp network {}", n.prefix);
        }
        for nb in &b.neighbors {
            let _ = writeln!(s, "set protocols bgp neighbor {} remote-as {}", nb.addr, nb.remote_as.0);
            if let Some(pref) = nb.local_pref {
                let _ = writeln!(s, "set protocols bgp neighbor {} local-preference {pref}", nb.addr);
            }
        }
        for d in &b.distribute_lists {
            if let DistributeListBinding::Neighbor { list, neighbor, .. } = d {
                let _ = writeln!(s, "set protocols bgp neighbor {neighbor} distribute-list {list}");
            }
        }
    }
    for pl in &cfg.prefix_lists {
        for e in &pl.entries {
            let action = match e.action {
                FilterAction::Permit => "permit",
                FilterAction::Deny => "deny",
            };
            let _ = writeln!(
                s,
                "set policy-options prefix-list {} seq {} {} {}",
                pl.name, e.seq, action, e.prefix
            );
        }
    }
    for r in &cfg.static_routes {
        let _ = writeln!(
            s,
            "set routing-options static route {} next-hop {}",
            r.prefix, r.next_hop
        );
    }
    for l in &cfg.extra_lines {
        s.push_str(l);
        s.push('\n');
    }
    s
}

// --- hosts ------------------------------------------------------------------

fn host_hostname(b: &mut HostBuilder, c: &Caps<'_>) -> Result<()> {
    b.hostname = Some(c.arg(0).to_string());
    Ok(())
}

fn host_address(b: &mut HostBuilder, c: &Caps<'_>) -> Result<()> {
    b.iface_name = Some(c.arg(0).to_string());
    b.address = Some(parse_cidr_addr(c.lineno, c.arg(1))?);
    Ok(())
}

fn host_gateway(b: &mut HostBuilder, c: &Caps<'_>) -> Result<()> {
    b.gateway = Some(parse_addr(c.lineno, c.arg(0))?);
    Ok(())
}

const HOST_TABLE: &[Rule<HostState, HostBuilder>] = &[
    Rule { from: HostState, pattern: &[Kw("set"), Kw("system"), Kw("host-name"), Arg], to: HostState, action: host_hostname },
    Rule { from: HostState, pattern: &[Kw("set"), Kw("interfaces"), Arg, Kw("address"), Arg], to: HostState, action: host_address },
    Rule { from: HostState, pattern: &[Kw("set"), Kw("routing-options"), Kw("gateway"), Arg], to: HostState, action: host_gateway },
];

fn parse_host(text: &str, stats: &mut ParseStats) -> Result<HostConfig> {
    let mut b = HostBuilder::default();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let t = raw.trim();
        if t.is_empty() {
            continue;
        }
        stats.lines += 1;
        if step(HOST_TABLE, HostState, t, lineno, &mut b)?.is_none() {
            b.extra.push(t.to_string());
            stats.unrecognized += 1;
        }
    }
    b.finish()
}

fn emit_host(cfg: &HostConfig) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "set system host-name {}", cfg.hostname);
    let (addr, len) = cfg.address;
    let _ = writeln!(s, "set interfaces {} address {addr}/{len}", cfg.iface_name);
    let _ = writeln!(s, "set routing-options gateway {}", cfg.gateway);
    for l in &cfg.extra {
        s.push_str(l);
        s.push('\n');
    }
    s
}

/// The `junos-set` codec.
pub struct JunosSetCodec;

impl VendorCodec for JunosSetCodec {
    fn vendor(&self) -> Vendor {
        Vendor::JunosSet
    }

    fn parse_router(&self, text: &str, stats: &mut ParseStats) -> Result<RouterConfig> {
        parse_router(text, stats)
    }

    fn parse_host(&self, text: &str, stats: &mut ParseStats) -> Result<HostConfig> {
        parse_host(text, stats)
    }

    fn emit_router(&self, cfg: &RouterConfig) -> String {
        emit_router(cfg)
    }

    fn emit_host(&self, cfg: &HostConfig) -> String {
        emit_host(cfg)
    }
}

#[cfg(test)]
mod tests {
    use crate::codec::{parse_host_as, parse_router_as, Vendor};
    use crate::parse_router;

    const ROUTER: &str = "\
set system host-name c2
set interfaces ge-0/0/0 address 10.25.17.25/31
set interfaces ge-0/0/0 ospf-cost 3
set interfaces ge-0/0/0 description to-AGG3-1
set interfaces ge-0/0/0 extra traffic-policy mark inbound
set protocols ospf process 1
set protocols ospf network 10.25.17.24/31 area 0
set protocols ospf distribute-list RejPfxs interface ge-0/0/0
set protocols bgp local-as 20
set protocols bgp network 10.25.0.0/16
set protocols bgp neighbor 10.25.17.24 remote-as 30
set protocols bgp neighbor 10.25.17.24 local-preference 200
set protocols bgp neighbor 10.25.17.24 distribute-list RejPfxs
set policy-options prefix-list RejPfxs seq 5 deny 10.9.0.0/24
set routing-options static route 10.5.0.0/24 next-hop 10.0.0.1
annotate this-is-kept-verbatim
";

    #[test]
    fn parses_and_round_trips_byte_exact() {
        let cfg = parse_router_as(Vendor::JunosSet, ROUTER).unwrap();
        assert_eq!(cfg.hostname, "c2");
        let i = &cfg.interfaces[0];
        assert_eq!(i.name, "ge-0/0/0");
        assert_eq!(i.address, Some(("10.25.17.25".parse().unwrap(), 31)));
        assert_eq!(i.ospf_cost, Some(3));
        assert_eq!(i.description.as_deref(), Some("to-AGG3-1"));
        assert_eq!(i.extra, vec!["traffic-policy mark inbound"]);
        let b = cfg.bgp.as_ref().unwrap();
        assert_eq!(b.neighbors[0].local_pref, Some(200));
        assert_eq!(cfg.static_routes.len(), 1);
        assert_eq!(cfg.extra_lines, vec!["annotate this-is-kept-verbatim"]);
        assert_eq!(cfg.emit_as(Vendor::JunosSet), ROUTER, "byte-exact round trip");
    }

    #[test]
    fn translates_to_and_from_ios_with_an_identical_model() {
        let model = parse_router_as(Vendor::JunosSet, ROUTER).unwrap();
        let ios_text = model.emit_as(Vendor::Ios);
        let back = parse_router(&ios_text).unwrap();
        assert_eq!(model, back);
    }

    #[test]
    fn bad_values_in_recognized_statements_are_rejected() {
        for line in [
            "set interfaces ge-0/0/0 address 10.0.0.1",
            "set interfaces ge-0/0/0 address 999.0.0.1/24",
            "set protocols ospf network 10.0.0.0/33 area 0",
            "set protocols bgp neighbor 10.0.0.1 local-preference 200",
        ] {
            assert!(
                parse_router_as(Vendor::JunosSet, line).is_err(),
                "{line} should be rejected"
            );
        }
    }

    #[test]
    fn empty_interfaces_and_rip_are_pinned_not_dropped() {
        let text = "set system host-name r1\nset interfaces lo0\nset protocols rip\n";
        let cfg = parse_router_as(Vendor::JunosSet, text).unwrap();
        assert_eq!(cfg.interfaces.len(), 1);
        assert!(cfg.rip.is_some());
        assert_eq!(cfg.emit_as(Vendor::JunosSet), text);
    }

    #[test]
    fn host_round_trips() {
        let text = "set system host-name hA\nset interfaces eth0 address 10.1.0.100/24\nset routing-options gateway 10.1.0.1\n";
        let h = parse_host_as(Vendor::JunosSet, text).unwrap();
        assert_eq!(h.hostname, "hA");
        assert_eq!(h.iface_name, "eth0");
        assert_eq!(h.address, ("10.1.0.100".parse().unwrap(), 24));
        assert_eq!(h.emit_as(Vendor::JunosSet), text);
        assert!(parse_host_as(Vendor::JunosSet, "set system host-name h\n").is_err());
    }
}
