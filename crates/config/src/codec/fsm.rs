//! Table-driven FSM machinery shared by the vendor codecs.
//!
//! Each codec defines an explicit state enum and a transition table of
//! [`Rule`]s over line-shape tokens ([`Tok`]). Driving a line through
//! [`step`] finds the first rule whose `from` state and token pattern
//! match, runs its action against the codec's builder, and returns the
//! rule's target state. A line no rule matches is handed back to the
//! codec's driver (`Ok(None)`), which applies the per-state fallback
//! policy — preserve verbatim or reject. That policy, not the table, is
//! what distinguishes "unknown feature, keep it byte-exact" from
//! "malformed statement inside a strict block".

use crate::codec::ParseError;

/// One line-shape token of a rule pattern.
pub enum Tok {
    /// A literal keyword the next word must equal exactly.
    Kw(&'static str),
    /// Exactly one word, captured as an argument.
    Arg,
    /// One or more words, captured as the raw line tail (inner whitespace
    /// preserved). Must be the last token of a pattern.
    Rest,
}

/// The captures of a matched rule, handed to its action.
pub struct Caps<'a> {
    /// 1-based line number, for error messages.
    pub lineno: usize,
    args: Vec<&'a str>,
}

impl<'a> Caps<'a> {
    /// The n-th capture (`Arg` and `Rest` tokens, in pattern order).
    pub fn arg(&self, n: usize) -> &'a str {
        self.args.get(n).copied().unwrap_or("")
    }
}

/// One transition of a codec's FSM: in state `from`, a line matching
/// `pattern` runs `action` against the builder and moves to `to`.
pub struct Rule<S, B> {
    /// State this rule applies in.
    pub from: S,
    /// Line shape that triggers it.
    pub pattern: &'static [Tok],
    /// State after the action runs.
    pub to: S,
    /// Per-edge action: record the captures into the builder.
    pub action: fn(&mut B, &Caps<'_>) -> Result<(), ParseError>,
}

/// Whitespace-separated words of a line, with their byte offsets (so a
/// `Rest` capture can slice the raw tail and keep inner spacing).
fn words(line: &str) -> Vec<(usize, &str)> {
    let mut out = Vec::new();
    let mut start = None;
    for (i, c) in line.char_indices() {
        if c.is_whitespace() {
            if let Some(s) = start.take() {
                out.push((s, &line[s..i]));
            }
        } else if start.is_none() {
            start = Some(i);
        }
    }
    if let Some(s) = start {
        out.push((s, &line[s..]));
    }
    out
}

/// Matches `pattern` against a (trimmed) line. The whole line must be
/// consumed — trailing words fail the match. Returns the captures.
fn match_pattern<'a>(pattern: &[Tok], line: &'a str) -> Option<Vec<&'a str>> {
    let words = words(line);
    let mut caps = Vec::new();
    let mut i = 0;
    for tok in pattern {
        match tok {
            Tok::Kw(kw) => {
                let (_, w) = words.get(i)?;
                if w != kw {
                    return None;
                }
                i += 1;
            }
            Tok::Arg => {
                let (_, w) = words.get(i)?;
                caps.push(*w);
                i += 1;
            }
            Tok::Rest => {
                let (off, _) = words.get(i)?;
                caps.push(line[*off..].trim_end());
                i = words.len();
            }
        }
    }
    if i == words.len() {
        Some(caps)
    } else {
        None
    }
}

/// Drives one line through `table` from `state`. `Ok(Some(next))` when a
/// rule matched (its action ran); `Ok(None)` when no rule in this state
/// matches the line shape; `Err` when a matching rule's action rejected
/// the captured values.
pub fn step<S: Copy + PartialEq, B>(
    table: &[Rule<S, B>],
    state: S,
    line: &str,
    lineno: usize,
    builder: &mut B,
) -> Result<Option<S>, ParseError> {
    for rule in table {
        if rule.from == state {
            if let Some(args) = match_pattern(rule.pattern, line) {
                (rule.action)(builder, &Caps { lineno, args })?;
                return Ok(Some(rule.to));
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Copy, PartialEq, Debug)]
    enum S {
        A,
        B,
    }

    #[derive(Default)]
    struct Sink(Vec<String>);

    fn record(b: &mut Sink, c: &Caps<'_>) -> Result<(), ParseError> {
        b.0.push(format!("{}@{}", c.arg(0), c.lineno));
        Ok(())
    }

    const TABLE: &[Rule<S, Sink>] = &[
        Rule {
            from: S::A,
            pattern: &[Tok::Kw("go"), Tok::Arg],
            to: S::B,
            action: record,
        },
        Rule {
            from: S::B,
            pattern: &[Tok::Kw("say"), Tok::Rest],
            to: S::B,
            action: record,
        },
    ];

    #[test]
    fn kw_and_arg_match_exact_word_counts() {
        let mut b = Sink::default();
        assert_eq!(step(TABLE, S::A, "go there", 1, &mut b).unwrap(), Some(S::B));
        assert_eq!(step(TABLE, S::A, "go there now", 2, &mut b).unwrap(), None);
        assert_eq!(step(TABLE, S::A, "stop", 3, &mut b).unwrap(), None);
        assert_eq!(b.0, vec!["there@1"]);
    }

    #[test]
    fn rest_preserves_inner_whitespace() {
        let mut b = Sink::default();
        assert_eq!(
            step(TABLE, S::B, "say two  spaced   words", 9, &mut b).unwrap(),
            Some(S::B)
        );
        assert_eq!(b.0, vec!["two  spaced   words@9"]);
    }

    #[test]
    fn rules_are_state_scoped() {
        let mut b = Sink::default();
        assert_eq!(step(TABLE, S::B, "go there", 1, &mut b).unwrap(), None);
        assert_eq!(step(TABLE, S::A, "say hi", 1, &mut b).unwrap(), None);
    }
}
