//! Vendor codec layer: per-vendor configuration frontends over the
//! vendor-neutral model in [`crate::model`].
//!
//! Every dialect implements [`VendorCodec`] — parse a router/host file
//! into the neutral [`RouterConfig`]/[`HostConfig`] model and emit the
//! model back as dialect text. Each parser is a table-driven FSM (see
//! [`fsm`]): an explicit state enum, a transition table over line-shape
//! tokens, and per-edge actions. Unrecognized lines are preserved
//! verbatim, so `parse → model → emit` stays byte-exact per vendor for
//! canonical (emitter-produced) files, and the append-only patch
//! invariant of [`crate::patch`] survives no matter which dialect a
//! network arrived in.
//!
//! Cross-vendor translation is composition: parse with dialect A, emit
//! with dialect B — the neutral model is the interchange hub. Use
//! [`Vendor::sniff`] to pick a dialect automatically.

pub mod detect;
mod eos;
pub mod fsm;
mod ios;
mod junos;

use crate::model::{HostConfig, RouterConfig};
use std::fmt;
use std::str::FromStr;

/// Error produced when a configuration file cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable message.
    pub message: String,
    /// The file (or router/host name) being parsed, when known. Filled by
    /// callers that walk directories or bundles, so a failure inside a
    /// 100-file network names its file instead of just a line number.
    pub file: Option<String>,
}

impl ParseError {
    /// Attaches the file (or config name) this error came from.
    pub fn with_file(mut self, file: impl Into<String>) -> ParseError {
        self.file = Some(file.into());
        self
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(file) = &self.file {
            write!(f, "{file}: line {}: {}", self.line, self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

pub(crate) fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
        file: None,
    }
}

/// Counters a codec fills while parsing one file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParseStats {
    /// Non-blank lines processed.
    pub lines: u64,
    /// Multi-line stanza blocks closed (interface/protocol blocks; flat
    /// dialects like `junos-set` have none).
    pub stanzas: u64,
    /// Lines preserved verbatim because no rule recognized them.
    pub unrecognized: u64,
}

/// A configuration dialect the codec layer speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Vendor {
    /// Cisco-IOS-style stanzas (the workspace's canonical dialect).
    Ios,
    /// Juniper flat `set ...` statement style.
    JunosSet,
    /// Arista EOS: IOS-like stanzas with CIDR addresses and `ip routing`.
    Eos,
}

impl Vendor {
    /// Every supported dialect, in detection-priority order.
    pub const ALL: [Vendor; 3] = [Vendor::Ios, Vendor::JunosSet, Vendor::Eos];

    /// Stable wire/CLI name of the dialect.
    pub fn name(self) -> &'static str {
        match self {
            Vendor::Ios => "ios",
            Vendor::JunosSet => "junos-set",
            Vendor::Eos => "eos",
        }
    }

    /// Guesses the dialect of one config file (see [`detect`]).
    pub fn sniff(text: &str) -> Vendor {
        detect::sniff(text)
    }

    /// Guesses the dialect of a whole bundle by majority vote over its
    /// files, ties broken in [`Vendor::ALL`] order. Deterministic, so a
    /// persisted `auto` submission resolves identically on every replay.
    pub fn sniff_all<'a>(texts: impl IntoIterator<Item = &'a str>) -> Vendor {
        let mut votes = [0usize; 3];
        for text in texts {
            match detect::sniff(text) {
                Vendor::Ios => votes[0] += 1,
                Vendor::JunosSet => votes[1] += 1,
                Vendor::Eos => votes[2] += 1,
            }
        }
        let best = votes.iter().copied().max().unwrap_or(0);
        Vendor::ALL
            .into_iter()
            .zip(votes)
            .find(|(_, v)| *v == best)
            .map(|(vendor, _)| vendor)
            .unwrap_or(Vendor::Ios)
    }
}

impl fmt::Display for Vendor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Vendor {
    type Err = String;

    fn from_str(s: &str) -> Result<Vendor, String> {
        match s {
            "ios" => Ok(Vendor::Ios),
            "junos-set" => Ok(Vendor::JunosSet),
            "eos" => Ok(Vendor::Eos),
            other => Err(format!(
                "unknown vendor '{other}' (expected auto, ios, junos-set, or eos)"
            )),
        }
    }
}

/// A per-vendor configuration frontend: parse dialect text into the
/// neutral model, emit the neutral model as dialect text.
pub trait VendorCodec: Sync {
    /// The dialect this codec speaks.
    fn vendor(&self) -> Vendor;

    /// Parses a router configuration file, accumulating `stats`.
    fn parse_router(&self, text: &str, stats: &mut ParseStats)
        -> Result<RouterConfig, ParseError>;

    /// Parses a host configuration file, accumulating `stats`.
    fn parse_host(&self, text: &str, stats: &mut ParseStats) -> Result<HostConfig, ParseError>;

    /// Renders a router configuration in this dialect.
    fn emit_router(&self, cfg: &RouterConfig) -> String;

    /// Renders a host configuration in this dialect.
    fn emit_host(&self, cfg: &HostConfig) -> String;
}

/// The codec for a dialect.
pub fn codec(vendor: Vendor) -> &'static dyn VendorCodec {
    match vendor {
        Vendor::Ios => &ios::IosCodec,
        Vendor::JunosSet => &junos::JunosSetCodec,
        Vendor::Eos => &eos::EosCodec,
    }
}

fn vendor_counter(vendor: Vendor) -> &'static str {
    match vendor {
        Vendor::Ios => "config.parse.vendor.ios",
        Vendor::JunosSet => "config.parse.vendor.junos-set",
        Vendor::Eos => "config.parse.vendor.eos",
    }
}

fn record_stats(vendor: Vendor, stats: ParseStats) {
    confmask_obs::counter_add("config.parse.lines", stats.lines);
    confmask_obs::counter_add("config.parse.stanzas", stats.stanzas);
    confmask_obs::counter_add("config.parse.unrecognized", stats.unrecognized);
    confmask_obs::counter_add(vendor_counter(vendor), 1);
}

/// Registers every `config.parse.*` counter at zero, so dashboards and
/// metric diffs see the full series before the first file is parsed.
pub fn register_metrics() {
    confmask_obs::counter_add("config.parse.lines", 0);
    confmask_obs::counter_add("config.parse.stanzas", 0);
    confmask_obs::counter_add("config.parse.unrecognized", 0);
    for vendor in Vendor::ALL {
        confmask_obs::counter_add(vendor_counter(vendor), 0);
    }
}

/// Parses a router configuration in the given dialect, under a
/// `config.parse` span and with the `config.parse.*` counters updated.
pub fn parse_router_as(vendor: Vendor, text: &str) -> Result<RouterConfig, ParseError> {
    let span = confmask_obs::span("config.parse");
    let mut stats = ParseStats::default();
    let result = codec(vendor).parse_router(text, &mut stats);
    record_stats(vendor, stats);
    span.finish();
    result
}

/// Parses a host configuration in the given dialect (counterpart of
/// [`parse_router_as`]).
pub fn parse_host_as(vendor: Vendor, text: &str) -> Result<HostConfig, ParseError> {
    let span = confmask_obs::span("config.parse");
    let mut stats = ParseStats::default();
    let result = codec(vendor).parse_host(text, &mut stats);
    record_stats(vendor, stats);
    span.finish();
    result
}

/// Parses a router configuration file in the IOS dialect (shorthand for
/// [`parse_router_as`] with [`Vendor::Ios`]).
pub fn parse_router(text: &str) -> Result<RouterConfig, ParseError> {
    parse_router_as(Vendor::Ios, text)
}

/// Parses a host configuration file in the IOS dialect (shorthand for
/// [`parse_host_as`] with [`Vendor::Ios`]).
pub fn parse_host(text: &str) -> Result<HostConfig, ParseError> {
    parse_host_as(Vendor::Ios, text)
}

impl RouterConfig {
    /// Renders the configuration in the given dialect. `emit_as(Ios)` is
    /// exactly [`RouterConfig::emit`].
    pub fn emit_as(&self, vendor: Vendor) -> String {
        codec(vendor).emit_router(self)
    }
}

impl HostConfig {
    /// Renders the host configuration in the given dialect.
    pub fn emit_as(&self, vendor: Vendor) -> String {
        codec(vendor).emit_host(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vendor_names_round_trip() {
        for vendor in Vendor::ALL {
            assert_eq!(vendor.name().parse::<Vendor>().unwrap(), vendor);
            assert_eq!(vendor.to_string(), vendor.name());
        }
        let e = "frame-relay".parse::<Vendor>().unwrap_err();
        assert!(e.contains("unknown vendor 'frame-relay'"), "{e}");
    }

    #[test]
    fn parse_error_display_includes_file_when_attached() {
        let e = err(4, "bad address");
        assert_eq!(e.to_string(), "line 4: bad address");
        let e = e.with_file("routers/r1.cfg");
        assert_eq!(e.to_string(), "routers/r1.cfg: line 4: bad address");
    }

    #[test]
    fn sniff_all_majority_vote_is_deterministic() {
        let ios = "hostname r1\n!\n";
        let junos = "set system host-name r1\n";
        assert_eq!(Vendor::sniff_all([ios, ios, junos]), Vendor::Ios);
        assert_eq!(Vendor::sniff_all([junos, junos, ios]), Vendor::JunosSet);
        // A tie resolves in ALL order (IOS first), and an empty bundle
        // defaults to IOS.
        assert_eq!(Vendor::sniff_all([ios, junos]), Vendor::Ios);
        assert_eq!(Vendor::sniff_all(std::iter::empty()), Vendor::Ios);
    }

    #[test]
    fn emit_as_ios_matches_the_canonical_emitter() {
        let cfg = crate::parse_router("hostname r1\n!\ninterface Ethernet0/0\n ip address 10.0.0.1 255.255.255.0\n!\n").unwrap();
        assert_eq!(cfg.emit_as(Vendor::Ios), cfg.emit());
    }
}
