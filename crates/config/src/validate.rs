//! Structural validation of a network's configurations.
//!
//! Validation catches internally inconsistent networks before they reach the
//! simulator: duplicate interface addresses, dangling distribute-list
//! references, hosts whose gateway is not on their LAN, and so on. The
//! anonymization pipeline validates both its input and its output — a
//! regression guard that the patch layer only produces well-formed
//! configurations.

use crate::model::*;
use std::collections::HashMap;

/// A single validation finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// Two interfaces on one router share a name.
    DuplicateInterfaceName {
        /// Router hostname.
        router: String,
        /// Offending interface name.
        interface: String,
    },
    /// The same interface address is configured twice in the network.
    DuplicateAddress {
        /// Dotted-quad address.
        addr: String,
        /// Devices carrying it.
        devices: (String, String),
    },
    /// A distribute-list references a prefix list that does not exist.
    UnknownPrefixList {
        /// Router hostname.
        router: String,
        /// Missing list name.
        list: String,
    },
    /// A distribute-list references an interface that does not exist.
    UnknownInterface {
        /// Router hostname.
        router: String,
        /// Missing interface name.
        interface: String,
    },
    /// A BGP distribute-list references a neighbor with no session.
    UnknownNeighbor {
        /// Router hostname.
        router: String,
        /// Neighbor address with no `remote-as` statement.
        neighbor: String,
    },
    /// A host's gateway is outside its own LAN prefix.
    GatewayOffLan {
        /// Host hostname.
        host: String,
    },
    /// A host's gateway address is not configured on any router.
    DanglingGateway {
        /// Host hostname.
        host: String,
    },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::DuplicateInterfaceName { router, interface } => {
                write!(f, "{router}: duplicate interface name {interface}")
            }
            ValidationError::DuplicateAddress { addr, devices } => {
                write!(f, "address {addr} configured on both {} and {}", devices.0, devices.1)
            }
            ValidationError::UnknownPrefixList { router, list } => {
                write!(f, "{router}: distribute-list references unknown prefix-list {list}")
            }
            ValidationError::UnknownInterface { router, interface } => {
                write!(f, "{router}: distribute-list references unknown interface {interface}")
            }
            ValidationError::UnknownNeighbor { router, neighbor } => {
                write!(f, "{router}: distribute-list references unknown neighbor {neighbor}")
            }
            ValidationError::GatewayOffLan { host } => {
                write!(f, "{host}: gateway is outside the host's LAN")
            }
            ValidationError::DanglingGateway { host } => {
                write!(f, "{host}: gateway address not configured on any router")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validates a network, returning every finding (empty = valid).
pub fn validate(net: &NetworkConfigs) -> Vec<ValidationError> {
    let mut errors = Vec::new();
    let mut addr_owner: HashMap<std::net::Ipv4Addr, String> = HashMap::new();

    for (name, rc) in &net.routers {
        let mut seen = std::collections::HashSet::new();
        for i in &rc.interfaces {
            if !seen.insert(i.name.as_str()) {
                errors.push(ValidationError::DuplicateInterfaceName {
                    router: name.clone(),
                    interface: i.name.clone(),
                });
            }
            if let Some((addr, _)) = i.address {
                if let Some(prev) = addr_owner.insert(addr, name.clone()) {
                    errors.push(ValidationError::DuplicateAddress {
                        addr: addr.to_string(),
                        devices: (prev, name.clone()),
                    });
                }
            }
        }

        let known_lists: std::collections::HashSet<&str> =
            rc.prefix_lists.iter().map(|p| p.name.as_str()).collect();
        let known_ifaces: std::collections::HashSet<&str> =
            rc.interfaces.iter().map(|i| i.name.as_str()).collect();
        let known_neighbors: std::collections::HashSet<std::net::Ipv4Addr> = rc
            .bgp
            .iter()
            .flat_map(|b| b.neighbors.iter().map(|n| n.addr))
            .collect();

        let igp_bindings = rc
            .ospf
            .iter()
            .flat_map(|o| o.distribute_lists.iter())
            .chain(rc.rip.iter().flat_map(|r| r.distribute_lists.iter()));
        for d in igp_bindings {
            if let DistributeListBinding::Interface { list, interface, .. } = d {
                if !known_lists.contains(list.as_str()) {
                    errors.push(ValidationError::UnknownPrefixList {
                        router: name.clone(),
                        list: list.clone(),
                    });
                }
                if !known_ifaces.contains(interface.as_str()) {
                    errors.push(ValidationError::UnknownInterface {
                        router: name.clone(),
                        interface: interface.clone(),
                    });
                }
            }
        }
        for d in rc.bgp.iter().flat_map(|b| b.distribute_lists.iter()) {
            if let DistributeListBinding::Neighbor { list, neighbor, .. } = d {
                if !known_lists.contains(list.as_str()) {
                    errors.push(ValidationError::UnknownPrefixList {
                        router: name.clone(),
                        list: list.clone(),
                    });
                }
                if !known_neighbors.contains(neighbor) {
                    errors.push(ValidationError::UnknownNeighbor {
                        router: name.clone(),
                        neighbor: neighbor.to_string(),
                    });
                }
            }
        }
    }

    for (name, h) in &net.hosts {
        match h.prefix() {
            Some(lan) if lan.contains_addr(h.gateway) => {
                let gw_exists = net.routers.values().any(|r| {
                    r.interfaces
                        .iter()
                        .any(|i| i.address.map(|(a, _)| a) == Some(h.gateway))
                });
                if !gw_exists {
                    errors.push(ValidationError::DanglingGateway { host: name.clone() });
                }
            }
            _ => errors.push(ValidationError::GatewayOffLan { host: name.clone() }),
        }
        let (addr, _) = h.address;
        if let Some(prev) = addr_owner.insert(addr, name.clone()) {
            errors.push(ValidationError::DuplicateAddress {
                addr: addr.to_string(),
                devices: (prev, name.clone()),
            });
        }
    }

    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_router;

    fn two_router_net() -> NetworkConfigs {
        let r1 = parse_router(
            "hostname r1\n!\ninterface Ethernet0/0\n ip address 10.0.0.0 255.255.255.254\n!\ninterface Ethernet0/1\n ip address 10.1.0.1 255.255.255.0\n!\nrouter ospf 1\n network 10.0.0.0 0.0.0.1 area 0\n network 10.1.0.0 0.0.0.255 area 0\n!\n",
        )
        .unwrap();
        let r2 = parse_router(
            "hostname r2\n!\ninterface Ethernet0/0\n ip address 10.0.0.1 255.255.255.254\n!\nrouter ospf 1\n network 10.0.0.0 0.0.0.1 area 0\n!\n",
        )
        .unwrap();
        let h = HostConfig {
            hostname: "h1".into(),
            iface_name: "eth0".into(),
            address: ("10.1.0.100".parse().unwrap(), 24),
            gateway: "10.1.0.1".parse().unwrap(),
            extra: vec![],
            added: false,
        };
        NetworkConfigs::new([r1, r2], [h])
    }

    #[test]
    fn valid_network_has_no_findings() {
        assert!(validate(&two_router_net()).is_empty());
    }

    #[test]
    fn detects_duplicate_address() {
        let mut net = two_router_net();
        let dup = net.routers["r1"].interfaces[0].clone();
        let r2 = net.routers.get_mut("r2").unwrap();
        let mut dup2 = dup;
        dup2.name = "Ethernet0/9".into();
        r2.interfaces.push(dup2);
        assert!(validate(&net)
            .iter()
            .any(|e| matches!(e, ValidationError::DuplicateAddress { .. })));
    }

    #[test]
    fn detects_dangling_distribute_list() {
        let mut net = two_router_net();
        let r1 = net.routers.get_mut("r1").unwrap();
        r1.ospf
            .as_mut()
            .unwrap()
            .distribute_lists
            .push(DistributeListBinding::Interface {
                list: "NOPE".into(),
                interface: "Ethernet0/0".into(),
                added: false,
            });
        let errs = validate(&net);
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::UnknownPrefixList { .. })));
    }

    #[test]
    fn detects_gateway_off_lan() {
        let mut net = two_router_net();
        net.hosts.get_mut("h1").unwrap().gateway = "10.99.0.1".parse().unwrap();
        assert!(validate(&net)
            .iter()
            .any(|e| matches!(e, ValidationError::GatewayOffLan { .. })));
    }

    #[test]
    fn detects_dangling_gateway() {
        let mut net = two_router_net();
        net.hosts.get_mut("h1").unwrap().gateway = "10.1.0.2".parse().unwrap();
        assert!(validate(&net)
            .iter()
            .any(|e| matches!(e, ValidationError::DanglingGateway { .. })));
    }

    #[test]
    fn detects_duplicate_interface_name() {
        let mut net = two_router_net();
        let r1 = net.routers.get_mut("r1").unwrap();
        let mut dup = r1.interfaces[0].clone();
        dup.address = Some(("10.55.0.1".parse().unwrap(), 24));
        r1.interfaces.push(dup);
        assert!(validate(&net)
            .iter()
            .any(|e| matches!(e, ValidationError::DuplicateInterfaceName { .. })));
    }
}
