//! Multi-vendor network configuration model for ConfMask.
//!
//! This crate is the "configuration file" substrate of the reproduction. It
//! provides:
//!
//! * a **vendor-neutral model** of router and host configurations
//!   ([`RouterConfig`], [`HostConfig`], grouped into a [`NetworkConfigs`]),
//! * a **codec layer** ([`codec`](mod@codec)) of per-vendor frontends behind
//!   the [`VendorCodec`] trait — Cisco-IOS-style stanzas (the canonical
//!   dialect), Juniper flat `set ...` statements (`junos-set`), and Arista
//!   EOS. Each parser is a table-driven FSM; unrecognized lines are
//!   preserved verbatim so `parse → model → emit` stays byte-exact per
//!   vendor on canonical files. Cross-vendor translation is parse-with-A,
//!   emit-with-B ([`parse_router_as`], [`RouterConfig::emit_as`]), and
//!   [`Vendor::sniff`] auto-detects a dialect,
//! * an **append-only patch layer** ([`patch`]) — the only way the rest of
//!   the workspace is allowed to mutate configurations. ConfMask's strong
//!   functional-equivalence conditions require that *no existing
//!   configuration line is modified or deleted* (§5.2 of the paper); the
//!   patch layer enforces that by construction and keeps an exact
//!   [`patch::LineLedger`] of added lines per category (routing-protocol /
//!   filter / interface / host lines), which is what Appendix C Table 3
//!   reports. Because every dialect round-trips through the same neutral
//!   model, the invariant survives no matter which vendor a network
//!   arrived in.
//!
//! Each dialect is deliberately a *subset* of its real-world counterpart,
//! with documented simplifications: IOS RIP `network` statements take an
//! explicit mask (instead of classful addressing), and host gateway
//! configuration uses a `gateway` line inside the interface block.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod emitter;
mod model;
pub mod patch;
mod validate;

pub use codec::{
    codec, parse_host, parse_host_as, parse_router, parse_router_as, register_metrics,
    ParseError, ParseStats, Vendor, VendorCodec,
};
pub use model::{
    BgpConfig, BgpNeighbor, DistributeListBinding, FilterAction, HostConfig, Interface,
    NetworkConfigs, NetworkStatement, OspfConfig, PrefixList, PrefixListEntry, Protocol,
    RipConfig, RouterConfig, StaticRoute, DEFAULT_LOCAL_PREF, DEFAULT_OSPF_COST,
};
pub use validate::{validate, ValidationError};
