//! Cisco-IOS-style network configuration model for ConfMask.
//!
//! This crate is the "configuration file" substrate of the reproduction. It
//! provides:
//!
//! * an AST for router and host configurations ([`RouterConfig`],
//!   [`HostConfig`], grouped into a [`NetworkConfigs`]),
//! * a line-oriented parser ([`parse_router`], [`parse_host`]) and an emitter
//!   that round-trips ([`RouterConfig::emit`]),
//! * an **append-only patch layer** ([`patch`]) — the only way the rest of
//!   the workspace is allowed to mutate configurations. ConfMask's strong
//!   functional-equivalence conditions require that *no existing
//!   configuration line is modified or deleted* (§5.2 of the paper); the
//!   patch layer enforces that by construction and keeps an exact
//!   [`patch::LineLedger`] of added lines per category (routing-protocol /
//!   filter / interface / host lines), which is what Appendix C Table 3
//!   reports.
//!
//! The dialect is deliberately a *subset* of classic IOS, with two documented
//! simplifications: RIP `network` statements take an explicit mask (instead
//! of classful addressing), and host gateway configuration uses a `gateway`
//! line inside the interface block.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod emitter;
mod parser;
pub mod patch;
mod validate;

pub use ast::{
    BgpConfig, BgpNeighbor, DistributeListBinding, FilterAction, HostConfig, Interface,
    NetworkConfigs, NetworkStatement, OspfConfig, PrefixList, PrefixListEntry, Protocol,
    RipConfig, RouterConfig, StaticRoute, DEFAULT_LOCAL_PREF, DEFAULT_OSPF_COST,
};
pub use parser::{parse_host, parse_router, ParseError};
pub use validate::{validate, ValidationError};
