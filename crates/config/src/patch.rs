//! Append-only configuration mutation.
//!
//! The [`Patcher`] is the *only* mutation interface the anonymization
//! pipeline uses. Every operation strictly **adds** configuration — new
//! interfaces, new `network` statements, new prefix-list entries, new
//! distribute-list bindings, new hosts — and never touches an existing line.
//! This enforces, by construction, the precondition of the paper's strong
//! functional-equivalence conditions (§5.2: "we satisfy the first condition
//! ... by ensuring that no existing configuration is modified or deleted").
//!
//! Each operation also records exactly how many configuration-file lines it
//! appends, per category, in a [`LineLedger`] — the raw data behind the
//! paper's configuration-utility metric `U_C = 1 − N_l / P_l` (§7.1) and the
//! Appendix C Table 3 breakdown.

use crate::model::*;
use confmask_net_types::{Asn, Ipv4Addr, Ipv4Prefix};

/// Running count of configuration lines added per category.
///
/// Categories follow Appendix C Table 3: routing-protocol lines (`network`
/// statements, `neighbor ... remote-as`), filter lines (prefix-list entries
/// and distribute-list bindings), and interface lines. Fake-host
/// configuration files are tracked separately since they are whole new
/// files, not lines injected into existing ones.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LineLedger {
    /// Lines added inside `router ospf|rip|bgp` blocks.
    pub protocol_lines: usize,
    /// Prefix-list entries plus distribute-list bindings.
    pub filter_lines: usize,
    /// Lines added as interface stanzas on routers.
    pub interface_lines: usize,
    /// Lines in newly created fake-host configuration files.
    pub host_lines: usize,
    /// Lines in newly created fake-router configuration files
    /// (network-scale obfuscation, §9).
    pub router_lines: usize,
}

impl LineLedger {
    /// Total lines injected by anonymization (the paper's `N_l`).
    pub fn total_added(&self) -> usize {
        self.protocol_lines
            + self.filter_lines
            + self.interface_lines
            + self.host_lines
            + self.router_lines
    }

    /// Component-wise sum of two ledgers.
    pub fn merged(self, other: LineLedger) -> LineLedger {
        LineLedger {
            protocol_lines: self.protocol_lines + other.protocol_lines,
            filter_lines: self.filter_lines + other.filter_lines,
            interface_lines: self.interface_lines + other.interface_lines,
            host_lines: self.host_lines + other.host_lines,
            router_lines: self.router_lines + other.router_lines,
        }
    }
}

/// Errors from patch operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatchError {
    /// Referenced router hostname does not exist.
    NoSuchRouter(String),
    /// A host with this name already exists.
    DuplicateHost(String),
    /// A router with this name already exists.
    DuplicateRouter(String),
}

impl std::fmt::Display for PatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PatchError::NoSuchRouter(r) => write!(f, "no such router '{r}'"),
            PatchError::DuplicateHost(h) => write!(f, "host '{h}' already exists"),
            PatchError::DuplicateRouter(r) => write!(f, "router '{r}' already exists"),
        }
    }
}

impl std::error::Error for PatchError {}

/// Append-only mutator over a [`NetworkConfigs`], with line accounting.
#[derive(Debug, Clone)]
pub struct Patcher {
    net: NetworkConfigs,
    ledger: LineLedger,
}

impl Patcher {
    /// Wraps a network for patching.
    pub fn new(net: NetworkConfigs) -> Self {
        Self {
            net,
            ledger: LineLedger::default(),
        }
    }

    /// Read access to the (partially patched) network.
    pub fn network(&self) -> &NetworkConfigs {
        &self.net
    }

    /// The line ledger so far.
    pub fn ledger(&self) -> LineLedger {
        self.ledger
    }

    /// Consumes the patcher, returning the patched network and the ledger.
    pub fn into_parts(self) -> (NetworkConfigs, LineLedger) {
        (self.net, self.ledger)
    }

    fn router_mut(&mut self, name: &str) -> Result<&mut RouterConfig, PatchError> {
        self.net
            .routers
            .get_mut(name)
            .ok_or_else(|| PatchError::NoSuchRouter(name.to_string()))
    }

    /// Generates a fresh interface name on `router`. Additions to *real*
    /// routers use `Ethernet9/N` (a slot number real hardware would not
    /// already use, so generated names can never collide with original
    /// ones); on *fake* routers the whole file is new, so first-class
    /// `Ethernet0/N` names are used to blend in.
    pub fn fresh_iface_name(&self, router: &str) -> String {
        let rc = self.net.routers.get(router);
        let slot = if rc.map(|r| r.added).unwrap_or(false) {
            "Ethernet0"
        } else {
            "Ethernet9"
        };
        let used: std::collections::HashSet<&str> = rc
            .map(|r| r.interfaces.iter().map(|i| i.name.as_str()).collect())
            .unwrap_or_default();
        (0..)
            .map(|n| format!("{slot}/{n}"))
            .find(|c| !used.contains(c.as_str()))
            .expect("unbounded iterator")
    }

    /// Adds an interface stanza to `router`. Returns the interface name.
    ///
    /// Counts `1 (interface) + 1 (ip address) [+1 cost] [+1 description]`
    /// interface lines.
    pub fn add_interface(
        &mut self,
        router: &str,
        addr: Ipv4Addr,
        len: u8,
        ospf_cost: Option<u32>,
        description: Option<String>,
    ) -> Result<String, PatchError> {
        let name = self.fresh_iface_name(router);
        let mut lines = 2;
        if ospf_cost.is_some() {
            lines += 1;
        }
        if description.is_some() {
            lines += 1;
        }
        let iface = Interface {
            name: name.clone(),
            address: Some((addr, len)),
            ospf_cost,
            description,
            shutdown: false,
            extra: Vec::new(),
            added: true,
        };
        self.router_mut(router)?.interfaces.push(iface);
        self.ledger.interface_lines += lines;
        Ok(name)
    }

    /// Adds a `network` statement for `prefix` to the router's IGP (OSPF or
    /// RIP — whichever the router runs) and, when the router runs BGP and
    /// `and_bgp` is set, to its BGP block as well.
    pub fn enable_network(
        &mut self,
        router: &str,
        prefix: Ipv4Prefix,
        and_bgp: bool,
    ) -> Result<(), PatchError> {
        let mut added = 0;
        let rc = self.router_mut(router)?;
        let stmt = NetworkStatement {
            prefix,
            area: 0,
            added: true,
        };
        if let Some(o) = rc.ospf.as_mut() {
            if !o.networks.iter().any(|n| n.prefix == prefix) {
                o.networks.push(stmt.clone());
                added += 1;
            }
        } else if let Some(r) = rc.rip.as_mut() {
            if !r.networks.iter().any(|n| n.prefix == prefix) {
                r.networks.push(stmt.clone());
                added += 1;
            }
        }
        if and_bgp {
            if let Some(b) = rc.bgp.as_mut() {
                if !b.networks.iter().any(|n| n.prefix == prefix) {
                    b.networks.push(stmt);
                    added += 1;
                }
            }
        }
        self.ledger.protocol_lines += added;
        Ok(())
    }

    /// Adds an eBGP `neighbor` statement on `router` toward `peer_addr` in
    /// `peer_as`.
    pub fn add_bgp_neighbor(
        &mut self,
        router: &str,
        peer_addr: Ipv4Addr,
        peer_as: Asn,
    ) -> Result<(), PatchError> {
        let rc = self.router_mut(router)?;
        if let Some(b) = rc.bgp.as_mut() {
            if !b.neighbors.iter().any(|n| n.addr == peer_addr) {
                b.neighbors.push(BgpNeighbor {
                    addr: peer_addr,
                    remote_as: peer_as,
                    local_pref: None,
                    added: true,
                });
                self.ledger.protocol_lines += 1;
            }
        }
        Ok(())
    }

    /// Ensures `list` on `router` contains a `deny prefix` entry.
    /// Returns `true` if a new entry was appended.
    pub fn ensure_deny_entry(
        &mut self,
        router: &str,
        list: &str,
        prefix: Ipv4Prefix,
    ) -> Result<bool, PatchError> {
        let rc = self.router_mut(router)?;
        let pl = match rc.prefix_lists.iter_mut().find(|p| p.name == list) {
            Some(pl) => pl,
            None => {
                rc.prefix_lists.push(PrefixList {
                    name: list.to_string(),
                    entries: Vec::new(),
                });
                rc.prefix_lists.last_mut().expect("just pushed")
            }
        };
        if pl
            .entries
            .iter()
            .any(|e| e.prefix == prefix && e.action == FilterAction::Deny)
        {
            return Ok(false);
        }
        let seq = pl.next_seq();
        pl.entries.push(PrefixListEntry {
            seq,
            action: FilterAction::Deny,
            prefix,
            added: true,
        });
        self.ledger.filter_lines += 1;
        Ok(true)
    }

    /// Removes a previously **added** deny entry (Algorithm 2 line 7 removes
    /// filters that broke reachability). Only entries with `added == true`
    /// may be removed — original configuration stays immutable.
    ///
    /// Returns `true` if an entry was removed.
    pub fn remove_added_deny_entry(
        &mut self,
        router: &str,
        list: &str,
        prefix: Ipv4Prefix,
    ) -> Result<bool, PatchError> {
        let rc = self.router_mut(router)?;
        let mut removed = 0;
        let mut now_empty = false;
        if let Some(pl) = rc.prefix_lists.iter_mut().find(|p| p.name == list) {
            let before = pl.entries.len();
            pl.entries
                .retain(|e| !(e.added && e.prefix == prefix && e.action == FilterAction::Deny));
            removed = before - pl.entries.len();
            now_empty = pl.entries.is_empty();
        }
        if removed == 0 {
            return Ok(false);
        }
        let mut unbound_total = 0usize;
        if now_empty {
            // An empty list emits no lines, so a binding to it would come
            // back from text as a dangling reference. Drop the list and
            // every *added* binding that referenced it.
            rc.prefix_lists.retain(|p| p.name != list);
            let mut unbound = 0;
            let matches = |d: &DistributeListBinding| -> bool {
                match d {
                    DistributeListBinding::Interface { list: l, added, .. }
                    | DistributeListBinding::Neighbor { list: l, added, .. } => {
                        *added && l == list
                    }
                }
            };
            if let Some(o) = rc.ospf.as_mut() {
                let before = o.distribute_lists.len();
                o.distribute_lists.retain(|d| !matches(d));
                unbound += before - o.distribute_lists.len();
            }
            if let Some(r) = rc.rip.as_mut() {
                let before = r.distribute_lists.len();
                r.distribute_lists.retain(|d| !matches(d));
                unbound += before - r.distribute_lists.len();
            }
            if let Some(b) = rc.bgp.as_mut() {
                let before = b.distribute_lists.len();
                b.distribute_lists.retain(|d| !matches(d));
                unbound += before - b.distribute_lists.len();
            }
            unbound_total = unbound;
        }
        self.ledger.filter_lines = self
            .ledger
            .filter_lines
            .saturating_sub(removed + unbound_total);
        Ok(true)
    }

    /// Binds `list` as an inbound IGP distribute-list on `interface` of
    /// `router` (idempotent).
    pub fn bind_igp_filter(
        &mut self,
        router: &str,
        list: &str,
        interface: &str,
    ) -> Result<(), PatchError> {
        let rc = self.router_mut(router)?;
        let binding = DistributeListBinding::Interface {
            list: list.to_string(),
            interface: interface.to_string(),
            added: true,
        };
        let matches = |d: &DistributeListBinding| match d {
            DistributeListBinding::Interface {
                list: l,
                interface: i,
                ..
            } => l == list && i == interface,
            _ => false,
        };
        let dls = if let Some(o) = rc.ospf.as_mut() {
            &mut o.distribute_lists
        } else if let Some(r) = rc.rip.as_mut() {
            &mut r.distribute_lists
        } else {
            return Ok(());
        };
        if !dls.iter().any(matches) {
            dls.push(binding);
            self.ledger.filter_lines += 1;
        }
        Ok(())
    }

    /// Binds `list` as an inbound BGP distribute-list on the session with
    /// `neighbor` (idempotent).
    pub fn bind_bgp_filter(
        &mut self,
        router: &str,
        list: &str,
        neighbor: Ipv4Addr,
    ) -> Result<(), PatchError> {
        let rc = self.router_mut(router)?;
        if let Some(b) = rc.bgp.as_mut() {
            let exists = b.distribute_lists.iter().any(|d| match d {
                DistributeListBinding::Neighbor {
                    list: l,
                    neighbor: n,
                    ..
                } => l == list && *n == neighbor,
                _ => false,
            });
            if !exists {
                b.distribute_lists.push(DistributeListBinding::Neighbor {
                    list: list.to_string(),
                    neighbor,
                    added: true,
                });
                self.ledger.filter_lines += 1;
            }
        }
        Ok(())
    }

    /// Creates a whole fake router (network-scale obfuscation, §9): an
    /// empty configuration carrying the same protocol blocks and
    /// uninterpreted management lines as `template` (hostname substituted),
    /// so the fake file blends in with the human-configured ones. Links and
    /// networks are added afterwards with the ordinary patch operations.
    pub fn add_fake_router(
        &mut self,
        hostname: &str,
        template: &str,
    ) -> Result<(), PatchError> {
        if self.net.routers.contains_key(hostname) {
            return Err(PatchError::DuplicateRouter(hostname.to_string()));
        }
        let template_rc = self
            .net
            .routers
            .get(template)
            .ok_or_else(|| PatchError::NoSuchRouter(template.to_string()))?;
        let mut rc = RouterConfig::new(hostname);
        rc.added = true;
        if let Some(o) = &template_rc.ospf {
            rc.ospf = Some(OspfConfig {
                process_id: o.process_id,
                networks: Vec::new(),
                distribute_lists: Vec::new(),
            });
        }
        if template_rc.rip.is_some() {
            rc.rip = Some(RipConfig {
                networks: Vec::new(),
                distribute_lists: Vec::new(),
            });
        }
        if let Some(b) = &template_rc.bgp {
            rc.bgp = Some(BgpConfig {
                asn: b.asn,
                networks: Vec::new(),
                neighbors: Vec::new(),
                distribute_lists: Vec::new(),
            });
        }
        rc.extra_lines = template_rc
            .extra_lines
            .iter()
            .map(|l| l.replace(template, hostname))
            .collect();
        self.ledger.router_lines += rc.emit_line_count();
        self.net.routers.insert(hostname.to_string(), rc);
        Ok(())
    }

    /// Generates a normal-looking first-slot interface name on a *fake*
    /// router (`Ethernet0/N`): fake routers' files must not use the
    /// telltale `Ethernet9/…` scheme reserved for additions to real files.
    pub fn fresh_fake_router_iface_name(&self, router: &str) -> String {
        let used: std::collections::HashSet<String> = self
            .net
            .routers
            .get(router)
            .map(|r| r.interfaces.iter().map(|i| i.name.clone()).collect())
            .unwrap_or_default();
        (0..)
            .map(|n| format!("Ethernet0/{n}"))
            .find(|c| !used.contains(c))
            .expect("unbounded iterator")
    }

    /// Adds an interface with an explicit name (used for fake routers,
    /// whose whole file is new).
    pub fn add_interface_named(
        &mut self,
        router: &str,
        name: &str,
        addr: Ipv4Addr,
        len: u8,
        ospf_cost: Option<u32>,
        description: Option<String>,
    ) -> Result<(), PatchError> {
        let mut lines = 2;
        if ospf_cost.is_some() {
            lines += 1;
        }
        if description.is_some() {
            lines += 1;
        }
        let iface = Interface {
            name: name.to_string(),
            address: Some((addr, len)),
            ospf_cost,
            description,
            shutdown: false,
            extra: Vec::new(),
            added: true,
        };
        self.router_mut(router)?.interfaces.push(iface);
        self.ledger.interface_lines += lines;
        Ok(())
    }

    /// Creates a fake host attached to `router` on a fresh LAN `prefix`:
    /// adds the router-side interface, enables the prefix in the router's
    /// protocols, and creates the host configuration file.
    ///
    /// Returns the new host's hostname.
    pub fn add_fake_host(
        &mut self,
        router: &str,
        hostname: &str,
        lan: Ipv4Prefix,
        advertise_in_bgp: bool,
    ) -> Result<(), PatchError> {
        if self.net.hosts.contains_key(hostname) {
            return Err(PatchError::DuplicateHost(hostname.to_string()));
        }
        let gw = lan.first_host();
        let host_addr = lan.second_host();
        self.add_interface(router, gw, lan.len(), None, None)?;
        self.enable_network(router, lan, advertise_in_bgp)?;
        let host = HostConfig {
            hostname: hostname.to_string(),
            iface_name: "eth0".to_string(),
            address: (host_addr, lan.len()),
            gateway: gw,
            extra: Vec::new(),
            added: true,
        };
        self.ledger.host_lines += host.emit_line_count();
        self.net.hosts.insert(hostname.to_string(), host);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_router;

    fn base_net() -> NetworkConfigs {
        let r1 = parse_router(
            "hostname r1\n!\ninterface Ethernet0/0\n ip address 10.0.0.0 255.255.255.254\n!\nrouter ospf 1\n network 10.0.0.0 0.0.0.1 area 0\n!\n",
        )
        .unwrap();
        let r2 = parse_router(
            "hostname r2\n!\ninterface Ethernet0/0\n ip address 10.0.0.1 255.255.255.254\n!\nrouter ospf 1\n network 10.0.0.0 0.0.0.1 area 0\n!\n",
        )
        .unwrap();
        NetworkConfigs::new([r1, r2], [])
    }

    #[test]
    fn add_interface_counts_lines() {
        let mut p = Patcher::new(base_net());
        let name = p
            .add_interface("r1", "172.16.0.0".parse().unwrap(), 31, Some(5), Some("fake".into()))
            .unwrap();
        assert_eq!(name, "Ethernet9/0");
        assert_eq!(p.ledger().interface_lines, 4);
        assert!(p.network().routers["r1"].interface(&name).unwrap().added);
    }

    #[test]
    fn fresh_names_do_not_collide() {
        let mut p = Patcher::new(base_net());
        let a = p
            .add_interface("r1", "172.16.0.0".parse().unwrap(), 31, None, None)
            .unwrap();
        let b = p
            .add_interface("r1", "172.16.0.2".parse().unwrap(), 31, None, None)
            .unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn enable_network_is_idempotent() {
        let mut p = Patcher::new(base_net());
        let pref: Ipv4Prefix = "172.16.0.0/31".parse().unwrap();
        p.enable_network("r1", pref, false).unwrap();
        p.enable_network("r1", pref, false).unwrap();
        assert_eq!(p.ledger().protocol_lines, 1);
        assert_eq!(
            p.network().routers["r1"].ospf.as_ref().unwrap().networks.len(),
            2
        );
    }

    #[test]
    fn deny_entry_and_binding_count_filter_lines() {
        let mut p = Patcher::new(base_net());
        let pref: Ipv4Prefix = "10.9.0.0/24".parse().unwrap();
        assert!(p.ensure_deny_entry("r1", "RejPfxs", pref).unwrap());
        assert!(!p.ensure_deny_entry("r1", "RejPfxs", pref).unwrap());
        p.bind_igp_filter("r1", "RejPfxs", "Ethernet0/0").unwrap();
        p.bind_igp_filter("r1", "RejPfxs", "Ethernet0/0").unwrap();
        assert_eq!(p.ledger().filter_lines, 2);
    }

    #[test]
    fn remove_added_deny_entry_only_removes_added() {
        let mut p = Patcher::new(base_net());
        let pref: Ipv4Prefix = "10.9.0.0/24".parse().unwrap();
        p.ensure_deny_entry("r1", "F", pref).unwrap();
        assert!(p.remove_added_deny_entry("r1", "F", pref).unwrap());
        assert!(!p.remove_added_deny_entry("r1", "F", pref).unwrap());
        assert_eq!(p.ledger().filter_lines, 0);
    }

    #[test]
    fn emptying_a_list_removes_it_and_its_bindings() {
        let mut p = Patcher::new(base_net());
        let pref: Ipv4Prefix = "10.9.0.0/24".parse().unwrap();
        p.ensure_deny_entry("r1", "Rej-Ethernet0/0", pref).unwrap();
        p.bind_igp_filter("r1", "Rej-Ethernet0/0", "Ethernet0/0").unwrap();
        assert!(p.remove_added_deny_entry("r1", "Rej-Ethernet0/0", pref).unwrap());
        let rc = &p.network().routers["r1"];
        assert!(rc.prefix_list("Rej-Ethernet0/0").is_none(), "empty list dropped");
        assert!(
            rc.ospf.as_ref().unwrap().distribute_lists.is_empty(),
            "binding dropped with the list"
        );
        assert_eq!(p.ledger().filter_lines, 0);
        // The emitted file is consistent.
        assert!(crate::validate(&p.network().clone()).is_empty());
    }

    #[test]
    fn partial_removal_keeps_list_and_binding() {
        let mut p = Patcher::new(base_net());
        let a: Ipv4Prefix = "10.9.0.0/24".parse().unwrap();
        let b: Ipv4Prefix = "10.9.1.0/24".parse().unwrap();
        p.ensure_deny_entry("r1", "F", a).unwrap();
        p.ensure_deny_entry("r1", "F", b).unwrap();
        p.bind_igp_filter("r1", "F", "Ethernet0/0").unwrap();
        assert!(p.remove_added_deny_entry("r1", "F", a).unwrap());
        let rc = &p.network().routers["r1"];
        assert_eq!(rc.prefix_list("F").unwrap().entries.len(), 1);
        assert_eq!(rc.ospf.as_ref().unwrap().distribute_lists.len(), 1);
    }

    #[test]
    fn fake_host_creates_router_iface_and_host_file() {
        let mut p = Patcher::new(base_net());
        let lan: Ipv4Prefix = "172.16.5.0/24".parse().unwrap();
        p.add_fake_host("r1", "h1-fake0", lan, false).unwrap();
        let net = p.network();
        assert!(net.hosts.contains_key("h1-fake0"));
        assert!(net.hosts["h1-fake0"].added);
        assert_eq!(net.hosts["h1-fake0"].gateway, lan.first_host());
        assert!(net.routers["r1"]
            .interfaces
            .iter()
            .any(|i| i.prefix() == Some(lan)));
        assert!(p.ledger().host_lines > 0);
        // Duplicate rejected.
        assert!(p.add_fake_host("r1", "h1-fake0", lan, false).is_err());
    }

    #[test]
    fn unknown_router_is_an_error() {
        let mut p = Patcher::new(base_net());
        assert!(p
            .add_interface("nope", "172.16.0.0".parse().unwrap(), 31, None, None)
            .is_err());
    }

    #[test]
    fn ledger_merge() {
        let a = LineLedger {
            protocol_lines: 1,
            filter_lines: 2,
            interface_lines: 3,
            host_lines: 4,
            router_lines: 5,
        };
        let b = LineLedger {
            protocol_lines: 10,
            filter_lines: 20,
            interface_lines: 30,
            host_lines: 40,
            router_lines: 50,
        };
        let m = a.merged(b);
        assert_eq!(m.total_added(), 165);
    }
}
