//! Configuration abstract syntax tree.
//!
//! Every struct carries `added` provenance flags where ConfMask can append
//! items; original items always have `added == false`, so the strong
//! functional-equivalence precondition ("no original line is modified or
//! deleted") can be audited after the fact.

use confmask_net_types::{Asn, Ipv4Addr, Ipv4Prefix};
use std::collections::BTreeMap;

/// The default OSPF link cost (Cisco default reference bandwidth yields 10
/// for the lab-style Ethernet links used throughout the paper's examples).
pub const DEFAULT_OSPF_COST: u32 = 10;

/// Which routing protocol a configuration statement belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Protocol {
    /// Open Shortest Path First (link-state IGP).
    Ospf,
    /// Routing Information Protocol (distance-vector IGP).
    Rip,
    /// Border Gateway Protocol (path-vector EGP).
    Bgp,
}

impl std::fmt::Display for Protocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Protocol::Ospf => write!(f, "ospf"),
            Protocol::Rip => write!(f, "rip"),
            Protocol::Bgp => write!(f, "bgp"),
        }
    }
}

/// One physical interface stanza.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Interface {
    /// Interface name, e.g. `Ethernet0/3`.
    pub name: String,
    /// Interface address and prefix length (`ip address A.B.C.D M.M.M.M`).
    pub address: Option<(Ipv4Addr, u8)>,
    /// Explicit OSPF cost (`ip ospf cost N`); `None` means protocol default.
    pub ospf_cost: Option<u32>,
    /// Free-form description line.
    pub description: Option<String>,
    /// Whether the interface is administratively down.
    pub shutdown: bool,
    /// Uninterpreted lines inside the stanza (QoS policy, etc.), preserved
    /// verbatim by the emitter.
    pub extra: Vec<String>,
    /// Provenance: `true` iff this interface was added by anonymization.
    pub added: bool,
}

impl Interface {
    /// Creates a bare interface with just a name and address.
    pub fn new(name: impl Into<String>, address: Ipv4Addr, len: u8) -> Self {
        Self {
            name: name.into(),
            address: Some((address, len)),
            ospf_cost: None,
            description: None,
            shutdown: false,
            extra: Vec::new(),
            added: false,
        }
    }

    /// The interface's connected prefix, if it has an address.
    pub fn prefix(&self) -> Option<Ipv4Prefix> {
        self.address
            .and_then(|(a, l)| Ipv4Prefix::new(a, l).ok())
    }
}

/// A `network <addr> <wildcard> [area N]` statement inside a protocol block.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct NetworkStatement {
    /// The prefix the statement enables the protocol on / advertises.
    pub prefix: Ipv4Prefix,
    /// OSPF area (always 0 in this reproduction; kept for fidelity).
    pub area: u32,
    /// Provenance: added by anonymization?
    pub added: bool,
}

/// `permit` / `deny` action in a prefix list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum FilterAction {
    /// Allow the route.
    Permit,
    /// Drop the route.
    Deny,
}

/// One `ip prefix-list NAME seq N <action> <prefix>` entry.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PrefixListEntry {
    /// Sequence number (defines evaluation order).
    pub seq: u32,
    /// Permit or deny.
    pub action: FilterAction,
    /// The matched prefix (exact match in this dialect).
    pub prefix: Ipv4Prefix,
    /// Provenance: added by anonymization?
    pub added: bool,
}

/// A named prefix list: ordered entries, first match wins, implicit
/// **permit** at the end.
///
/// Note: real IOS prefix lists end in an implicit *deny*; ConfMask's filters
/// are pure deny-lists ("deny these destinations, let everything else
/// through"), matching the `RejPfxs` example in Listing 3 of the paper, so
/// this dialect documents an implicit permit instead.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PrefixList {
    /// List name referenced by distribute-list bindings.
    pub name: String,
    /// Entries in sequence order.
    pub entries: Vec<PrefixListEntry>,
}

impl PrefixList {
    /// Evaluates the list against `prefix`: first matching entry decides;
    /// no match ⇒ permit.
    pub fn evaluate(&self, prefix: &Ipv4Prefix) -> FilterAction {
        for e in &self.entries {
            if e.prefix == *prefix || e.prefix.contains(prefix) {
                return e.action;
            }
        }
        FilterAction::Permit
    }

    /// Next free sequence number (multiples of 5, like IOS defaults).
    pub fn next_seq(&self) -> u32 {
        self.entries.iter().map(|e| e.seq).max().unwrap_or(0) + 5
    }
}

/// Where a distribute-list filter applies.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum DistributeListBinding {
    /// IGP form: `distribute-list prefix NAME in <interface>` — filters
    /// routes learned through that interface.
    Interface {
        /// Prefix-list name.
        list: String,
        /// Interface the inbound filter applies to.
        interface: String,
        /// Provenance flag.
        added: bool,
    },
    /// BGP form: `neighbor A.B.C.D distribute-list NAME in` — filters routes
    /// learned from that neighbor.
    Neighbor {
        /// Prefix-list name.
        list: String,
        /// Neighbor session address.
        neighbor: Ipv4Addr,
        /// Provenance flag.
        added: bool,
    },
}

/// `router ospf N` block.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct OspfConfig {
    /// OSPF process id.
    pub process_id: u32,
    /// Enabled/advertised networks.
    pub networks: Vec<NetworkStatement>,
    /// Inbound route filters.
    pub distribute_lists: Vec<DistributeListBinding>,
}

/// `router rip` block.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RipConfig {
    /// Enabled/advertised networks.
    pub networks: Vec<NetworkStatement>,
    /// Inbound route filters.
    pub distribute_lists: Vec<DistributeListBinding>,
}

/// The default BGP local preference (Cisco default).
pub const DEFAULT_LOCAL_PREF: u32 = 100;

/// One `neighbor` under `router bgp`.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BgpNeighbor {
    /// Session (interface) address of the peer.
    pub addr: Ipv4Addr,
    /// Peer AS number.
    pub remote_as: Asn,
    /// Local preference assigned to routes learned from this neighbor
    /// (`neighbor A.B.C.D local-preference N`); `None` = default (100).
    /// Higher wins, before AS-path length, in the decision process.
    pub local_pref: Option<u32>,
    /// Provenance flag.
    pub added: bool,
}

/// `router bgp ASN` block.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BgpConfig {
    /// Local AS number.
    pub asn: Asn,
    /// Advertised networks (`network P mask M`).
    pub networks: Vec<NetworkStatement>,
    /// eBGP sessions.
    pub neighbors: Vec<BgpNeighbor>,
    /// Inbound per-neighbor route filters.
    pub distribute_lists: Vec<DistributeListBinding>,
}

/// A complete router configuration file.
#[derive(Debug, Clone, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct RouterConfig {
    /// Device hostname.
    pub hostname: String,
    /// Provenance: `true` iff this is a fake router added by anonymization
    /// (network-scale obfuscation, §9). Not part of the emitted text.
    pub added: bool,
    /// Interface stanzas, in file order.
    pub interfaces: Vec<Interface>,
    /// Optional `router ospf` block.
    pub ospf: Option<OspfConfig>,
    /// Optional `router rip` block.
    pub rip: Option<RipConfig>,
    /// Optional `router bgp` block.
    pub bgp: Option<BgpConfig>,
    /// Named prefix lists.
    pub prefix_lists: Vec<PrefixList>,
    /// Static routes (`ip route <net> <mask> <next-hop>`).
    pub static_routes: Vec<StaticRoute>,
    /// Top-level lines we do not interpret, preserved verbatim.
    pub extra_lines: Vec<String>,
}

/// An `ip route <network> <mask> <next-hop>` statement. Administrative
/// distance 1 — static routes beat every dynamic protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct StaticRoute {
    /// Destination prefix.
    pub prefix: Ipv4Prefix,
    /// Next-hop address (must be on a connected segment to resolve).
    pub next_hop: Ipv4Addr,
    /// Provenance: added by anonymization?
    pub added: bool,
}

impl RouterConfig {
    /// Creates an empty configuration with just a hostname.
    pub fn new(hostname: impl Into<String>) -> Self {
        Self {
            hostname: hostname.into(),
            ..Default::default()
        }
    }

    /// Finds an interface by name.
    pub fn interface(&self, name: &str) -> Option<&Interface> {
        self.interfaces.iter().find(|i| i.name == name)
    }

    /// Finds the interface whose connected prefix contains `addr`.
    pub fn interface_for_addr(&self, addr: Ipv4Addr) -> Option<&Interface> {
        self.interfaces
            .iter()
            .find(|i| i.prefix().is_some_and(|p| p.contains_addr(addr)))
    }

    /// Finds a prefix list by name.
    pub fn prefix_list(&self, name: &str) -> Option<&PrefixList> {
        self.prefix_lists.iter().find(|p| p.name == name)
    }

    /// All prefixes appearing anywhere in this configuration (interface
    /// networks and protocol network statements). Used to seed the
    /// [`confmask_net_types::PrefixAllocator`].
    pub fn used_prefixes(&self) -> Vec<Ipv4Prefix> {
        let mut out = Vec::new();
        for i in &self.interfaces {
            out.extend(i.prefix());
        }
        for ns in self.network_statements() {
            out.push(ns.prefix);
        }
        out
    }

    fn network_statements(&self) -> impl Iterator<Item = &NetworkStatement> {
        self.ospf
            .iter()
            .flat_map(|o| o.networks.iter())
            .chain(self.rip.iter().flat_map(|r| r.networks.iter()))
            .chain(self.bgp.iter().flat_map(|b| b.networks.iter()))
    }
}

/// A host ("end device") configuration file.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct HostConfig {
    /// Device hostname.
    pub hostname: String,
    /// Interface name (hosts have exactly one).
    pub iface_name: String,
    /// Host address and prefix length.
    pub address: (Ipv4Addr, u8),
    /// Default gateway (the attached router's LAN address).
    pub gateway: Ipv4Addr,
    /// Uninterpreted lines, preserved verbatim.
    pub extra: Vec<String>,
    /// Provenance: `true` iff this is a fake host added by anonymization.
    pub added: bool,
}

impl HostConfig {
    /// The host's LAN prefix.
    pub fn prefix(&self) -> Option<Ipv4Prefix> {
        Ipv4Prefix::new(self.address.0, self.address.1).ok()
    }

    /// The host's /32 address prefix (what routing ultimately must deliver).
    pub fn addr_prefix(&self) -> Ipv4Prefix {
        Ipv4Prefix::new(self.address.0, 32).expect("/32 is valid")
    }
}

/// A complete network: every router and host configuration file, keyed by
/// hostname (file order preserved via `BTreeMap` determinism).
#[derive(Debug, Clone, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct NetworkConfigs {
    /// Router configurations by hostname.
    pub routers: BTreeMap<String, RouterConfig>,
    /// Host configurations by hostname.
    pub hosts: BTreeMap<String, HostConfig>,
}

impl NetworkConfigs {
    /// Builds a network from iterators of router and host configs.
    pub fn new(
        routers: impl IntoIterator<Item = RouterConfig>,
        hosts: impl IntoIterator<Item = HostConfig>,
    ) -> Self {
        Self {
            routers: routers.into_iter().map(|r| (r.hostname.clone(), r)).collect(),
            hosts: hosts.into_iter().map(|h| (h.hostname.clone(), h)).collect(),
        }
    }

    /// Every prefix used anywhere in the network.
    pub fn used_prefixes(&self) -> Vec<Ipv4Prefix> {
        let mut out: Vec<Ipv4Prefix> = self
            .routers
            .values()
            .flat_map(|r| r.used_prefixes())
            .collect();
        out.extend(self.hosts.values().filter_map(|h| h.prefix()));
        out.sort();
        out.dedup();
        out
    }

    /// Total emitted line count across every configuration file (the paper's
    /// `P_l`). Counts every non-blank line including stanza separators.
    pub fn total_lines(&self) -> usize {
        self.routers.values().map(|r| r.emit_line_count()).sum::<usize>()
            + self.hosts.values().map(|h| h.emit_line_count()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn prefix_list_first_match_wins() {
        let pl = PrefixList {
            name: "T".into(),
            entries: vec![
                PrefixListEntry {
                    seq: 5,
                    action: FilterAction::Deny,
                    prefix: p("10.0.0.0/24"),
                    added: false,
                },
                PrefixListEntry {
                    seq: 10,
                    action: FilterAction::Permit,
                    prefix: p("10.0.0.0/16"),
                    added: false,
                },
            ],
        };
        assert_eq!(pl.evaluate(&p("10.0.0.0/24")), FilterAction::Deny);
        assert_eq!(pl.evaluate(&p("10.0.1.0/24")), FilterAction::Permit);
        // implicit permit
        assert_eq!(pl.evaluate(&p("192.168.0.0/24")), FilterAction::Permit);
    }

    #[test]
    fn prefix_list_deny_covers_subprefixes() {
        let pl = PrefixList {
            name: "T".into(),
            entries: vec![PrefixListEntry {
                seq: 5,
                action: FilterAction::Deny,
                prefix: p("10.1.0.0/16"),
                added: false,
            }],
        };
        assert_eq!(pl.evaluate(&p("10.1.2.0/24")), FilterAction::Deny);
        assert_eq!(pl.evaluate(&p("10.2.0.0/16")), FilterAction::Permit);
    }

    #[test]
    fn next_seq_increments_by_five() {
        let mut pl = PrefixList {
            name: "T".into(),
            entries: vec![],
        };
        assert_eq!(pl.next_seq(), 5);
        pl.entries.push(PrefixListEntry {
            seq: 5,
            action: FilterAction::Deny,
            prefix: p("10.0.0.0/24"),
            added: false,
        });
        assert_eq!(pl.next_seq(), 10);
    }

    #[test]
    fn interface_prefix_and_lookup() {
        let mut rc = RouterConfig::new("r1");
        rc.interfaces.push(Interface::new("Ethernet0/0", "10.0.0.0".parse().unwrap(), 31));
        assert_eq!(rc.interface("Ethernet0/0").unwrap().prefix(), Some(p("10.0.0.0/31")));
        assert!(rc
            .interface_for_addr("10.0.0.1".parse().unwrap())
            .is_some());
        assert!(rc
            .interface_for_addr("10.0.0.2".parse().unwrap())
            .is_none());
    }

    #[test]
    fn used_prefixes_deduplicates() {
        let mut rc = RouterConfig::new("r1");
        rc.interfaces.push(Interface::new("Ethernet0/0", "10.0.0.0".parse().unwrap(), 31));
        rc.ospf = Some(OspfConfig {
            process_id: 1,
            networks: vec![NetworkStatement {
                prefix: p("10.0.0.0/31"),
                area: 0,
                added: false,
            }],
            distribute_lists: vec![],
        });
        let net = NetworkConfigs::new([rc], []);
        assert_eq!(net.used_prefixes(), vec![p("10.0.0.0/31")]);
    }
}
