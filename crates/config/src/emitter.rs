//! Emission of configuration ASTs back to IOS-style text.
//!
//! The emitter and the IOS codec ([`crate::codec`]) round-trip:
//! `parse(emit(cfg)) == cfg`
//! (up to provenance flags, which are serialization-invisible — provenance is
//! an in-memory audit trail, not part of the configuration language).

use crate::model::*;
use confmask_net_types::Ipv4Prefix;
use std::fmt::Write as _;

const SEP: &str = "!";

impl RouterConfig {
    /// Renders the configuration to IOS-style text.
    pub fn emit(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "hostname {}", self.hostname);
        s.push_str(SEP);
        s.push('\n');
        for i in &self.interfaces {
            emit_interface(&mut s, i);
            s.push_str(SEP);
            s.push('\n');
        }
        if let Some(o) = &self.ospf {
            let _ = writeln!(s, "router ospf {}", o.process_id);
            for n in &o.networks {
                let _ = writeln!(
                    s,
                    " network {} {} area {}",
                    n.prefix.network(),
                    n.prefix.wildcard_mask(),
                    n.area
                );
            }
            for d in &o.distribute_lists {
                emit_igp_distribute_list(&mut s, d);
            }
            s.push_str(SEP);
            s.push('\n');
        }
        if let Some(r) = &self.rip {
            s.push_str("router rip\n version 2\n");
            for n in &r.networks {
                let _ = writeln!(s, " network {} {}", n.prefix.network(), n.prefix.subnet_mask());
            }
            for d in &r.distribute_lists {
                emit_igp_distribute_list(&mut s, d);
            }
            s.push_str(SEP);
            s.push('\n');
        }
        if let Some(b) = &self.bgp {
            let _ = writeln!(s, "router bgp {}", b.asn.0);
            for n in &b.networks {
                let _ = writeln!(
                    s,
                    " network {} mask {}",
                    n.prefix.network(),
                    n.prefix.subnet_mask()
                );
            }
            for nb in &b.neighbors {
                let _ = writeln!(s, " neighbor {} remote-as {}", nb.addr, nb.remote_as.0);
                if let Some(pref) = nb.local_pref {
                    let _ = writeln!(s, " neighbor {} local-preference {pref}", nb.addr);
                }
            }
            for d in &b.distribute_lists {
                if let DistributeListBinding::Neighbor { list, neighbor, .. } = d {
                    let _ = writeln!(s, " neighbor {neighbor} distribute-list {list} in");
                }
            }
            s.push_str(SEP);
            s.push('\n');
        }
        for pl in &self.prefix_lists {
            for e in &pl.entries {
                let action = match e.action {
                    FilterAction::Permit => "permit",
                    FilterAction::Deny => "deny",
                };
                let _ = writeln!(s, "ip prefix-list {} seq {} {} {}", pl.name, e.seq, action, e.prefix);
            }
            if !pl.entries.is_empty() {
                s.push_str(SEP);
                s.push('\n');
            }
        }
        for r in &self.static_routes {
            let _ = writeln!(
                s,
                "ip route {} {} {}",
                r.prefix.network(),
                r.prefix.subnet_mask(),
                r.next_hop
            );
        }
        if !self.static_routes.is_empty() {
            s.push_str(SEP);
            s.push('\n');
        }
        for l in &self.extra_lines {
            s.push_str(l);
            s.push('\n');
        }
        s
    }

    /// Number of non-blank lines `emit` produces (the paper counts
    /// configuration size in file lines).
    pub fn emit_line_count(&self) -> usize {
        self.emit().lines().filter(|l| !l.trim().is_empty()).count()
    }
}

fn emit_interface(s: &mut String, i: &Interface) {
    let _ = writeln!(s, "interface {}", i.name);
    if let Some((addr, len)) = i.address {
        let mask = Ipv4Prefix::new(addr, len).map(|p| p.subnet_mask());
        if let Ok(mask) = mask {
            let _ = writeln!(s, " ip address {addr} {mask}");
        }
    }
    if let Some(c) = i.ospf_cost {
        let _ = writeln!(s, " ip ospf cost {c}");
    }
    if let Some(d) = &i.description {
        let _ = writeln!(s, " description {d}");
    }
    if i.shutdown {
        s.push_str(" shutdown\n");
    }
    for l in &i.extra {
        let _ = writeln!(s, " {l}");
    }
}

fn emit_igp_distribute_list(s: &mut String, d: &DistributeListBinding) {
    if let DistributeListBinding::Interface { list, interface, .. } = d {
        let _ = writeln!(s, " distribute-list prefix {list} in {interface}");
    }
}

impl HostConfig {
    /// Renders the host configuration to text.
    pub fn emit(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "hostname {}", self.hostname);
        s.push_str(SEP);
        s.push('\n');
        let _ = writeln!(s, "interface {}", self.iface_name);
        let (addr, len) = self.address;
        if let Ok(p) = Ipv4Prefix::new(addr, len) {
            let _ = writeln!(s, " ip address {} {}", addr, p.subnet_mask());
        }
        let _ = writeln!(s, " gateway {}", self.gateway);
        for l in &self.extra {
            let _ = writeln!(s, " {l}");
        }
        s.push_str(SEP);
        s.push('\n');
        s
    }

    /// Number of non-blank lines `emit` produces.
    pub fn emit_line_count(&self) -> usize {
        self.emit().lines().filter(|l| !l.trim().is_empty()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confmask_net_types::Asn;

    #[test]
    fn emits_minimal_router() {
        let rc = RouterConfig::new("r1");
        let text = rc.emit();
        assert!(text.starts_with("hostname r1\n!"));
        assert_eq!(rc.emit_line_count(), 2);
    }

    #[test]
    fn emits_interface_with_all_fields() {
        let mut rc = RouterConfig::new("r1");
        let mut i = Interface::new("Ethernet0/0", "10.0.0.0".parse().unwrap(), 31);
        i.ospf_cost = Some(5);
        i.description = Some("to-r2".into());
        i.extra.push("traffic-policy mark inbound".into());
        rc.interfaces.push(i);
        let t = rc.emit();
        assert!(t.contains("interface Ethernet0/0\n"));
        assert!(t.contains(" ip address 10.0.0.0 255.255.255.254\n"));
        assert!(t.contains(" ip ospf cost 5\n"));
        assert!(t.contains(" description to-r2\n"));
        assert!(t.contains(" traffic-policy mark inbound\n"));
    }

    #[test]
    fn emits_bgp_block() {
        let mut rc = RouterConfig::new("r1");
        rc.bgp = Some(BgpConfig {
            asn: Asn(65001),
            networks: vec![NetworkStatement {
                prefix: "10.1.0.0/24".parse().unwrap(),
                area: 0,
                added: false,
            }],
            neighbors: vec![BgpNeighbor {
                addr: "10.0.0.1".parse().unwrap(),
                remote_as: Asn(65002),
                local_pref: None,
                added: false,
            }],
            distribute_lists: vec![DistributeListBinding::Neighbor {
                list: "RejPfxs".into(),
                neighbor: "10.0.0.1".parse().unwrap(),
                added: false,
            }],
        });
        let t = rc.emit();
        assert!(t.contains("router bgp 65001\n"));
        assert!(t.contains(" network 10.1.0.0 mask 255.255.255.0\n"));
        assert!(t.contains(" neighbor 10.0.0.1 remote-as 65002\n"));
        assert!(t.contains(" neighbor 10.0.0.1 distribute-list RejPfxs in\n"));
    }

    #[test]
    fn emits_host() {
        let h = HostConfig {
            hostname: "hA".into(),
            iface_name: "eth0".into(),
            address: ("10.1.0.100".parse().unwrap(), 24),
            gateway: "10.1.0.1".parse().unwrap(),
            extra: vec![],
            added: false,
        };
        let t = h.emit();
        assert!(t.contains("hostname hA\n"));
        assert!(t.contains(" ip address 10.1.0.100 255.255.255.0\n"));
        assert!(t.contains(" gateway 10.1.0.1\n"));
        assert_eq!(h.emit_line_count(), 6);
    }
}
