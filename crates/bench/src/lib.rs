//! Shared machinery for the figure-regeneration harness and the Criterion
//! benches: a memoizing experiment runner and small statistics helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod stats;

use confmask::{anonymize, Anonymized, EquivalenceMode, Params};
use confmask_netgen::EvalNetwork;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Key identifying one anonymization run.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RunKey {
    /// Network id (Table 2 letter).
    pub net: char,
    /// `k_R`.
    pub k_r: usize,
    /// `k_H`.
    pub k_h: usize,
    /// Equivalence mode (ConfMask / Strawman1 / Strawman2).
    pub mode: EquivalenceMode,
    /// Seed.
    pub seed: u64,
}

/// Memoizing runner: each (network, parameters) pipeline executes once per
/// process even when several figures need it.
pub struct Runner {
    suite: Vec<EvalNetwork>,
    cache: Mutex<BTreeMap<RunKey, std::sync::Arc<Anonymized>>>,
}

impl Default for Runner {
    fn default() -> Self {
        Self::new()
    }
}

impl Runner {
    /// A runner over the full Table 2 suite.
    pub fn new() -> Self {
        Self {
            suite: confmask_netgen::full_suite(),
            cache: Mutex::new(BTreeMap::new()),
        }
    }

    /// A runner over only the fast networks (A, B, C, G) — `--quick` mode.
    pub fn quick() -> Self {
        Self {
            suite: confmask_netgen::suite::small_suite(),
            cache: Mutex::new(BTreeMap::new()),
        }
    }

    /// The evaluation networks this runner covers.
    pub fn suite(&self) -> &[EvalNetwork] {
        &self.suite
    }

    /// The network with a given Table 2 id, if in the suite.
    pub fn network(&self, id: char) -> Option<&EvalNetwork> {
        self.suite.iter().find(|n| n.id == id)
    }

    /// Runs (or returns the cached) anonymization for a key.
    pub fn run(&self, key: RunKey) -> std::sync::Arc<Anonymized> {
        if let Some(hit) = self.cache.lock().expect("poisoned").get(&key) {
            return hit.clone();
        }
        let net = self
            .network(key.net)
            .unwrap_or_else(|| panic!("network {} not in suite", key.net));
        let params = Params {
            k_r: key.k_r,
            k_h: key.k_h,
            seed: key.seed,
            mode: key.mode,
            ..Params::default()
        };
        let result = std::sync::Arc::new(
            anonymize(&net.configs, &params)
                .unwrap_or_else(|e| panic!("anonymize {} {:?}: {e}", key.net, params)),
        );
        self.cache
            .lock()
            .expect("poisoned")
            .insert(key, result.clone());
        result
    }

    /// Default-parameter run (`k_R=6, k_H=2`, ConfMask, seed 0).
    pub fn default_run(&self, net: char) -> std::sync::Arc<Anonymized> {
        self.run(RunKey {
            net,
            k_r: 6,
            k_h: 2,
            mode: EquivalenceMode::ConfMask,
            seed: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_caches_runs() {
        let r = Runner::quick();
        let a = r.default_run('A');
        let b = r.default_run('A');
        assert!(std::sync::Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn quick_suite_is_small() {
        let r = Runner::quick();
        assert_eq!(r.suite().len(), 4);
        assert!(r.network('F').is_none());
    }
}
