//! Small statistics helpers for the evaluation harness.

/// Pearson correlation coefficient of two equal-length samples.
/// Returns `None` for fewer than two points or zero variance.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return None;
    }
    Some(cov / (vx * vy).sqrt())
}

/// Arithmetic mean (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_correlations() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let up: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        let down: Vec<f64> = xs.iter().map(|x| -x + 10.0).collect();
        assert!((pearson(&xs, &up).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &down).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(pearson(&[1.0], &[2.0]), None);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), None);
        assert_eq!(pearson(&[1.0, 2.0], &[2.0, 3.0, 4.0]), None);
    }

    #[test]
    fn mean_works() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }
}
