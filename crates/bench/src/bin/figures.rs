//! Regenerates every table and figure of the paper's evaluation (§7 and
//! Appendix C).
//!
//! ```text
//! figures [--quick] <experiment>...
//! figures all              # everything (minutes)
//! figures --quick fig5     # fast subset of networks (A, B, C, G)
//! ```
//!
//! Experiments: `table2 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13
//! fig14 fig15 fig16 table3 ablation attacks frontier all`.
//!
//! `frontier` compares all three anonymization strategies (ConfMask,
//! NetHide, NetCloak) over the extended suite, including FatTree(16) and
//! the scaling WANs; because the full run anonymizes those large nets it
//! is *not* part of `all` — ask for it explicitly.

use confmask::EquivalenceMode;
use confmask_bench::stats::{mean, pearson};
use confmask_bench::{RunKey, Runner};
use confmask_topology::extract::extract_topology;
use confmask_topology::metrics::{clustering_coefficient, min_same_degree};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    if wanted.is_empty() {
        eprintln!(
            "usage: figures [--quick] <table2|fig5|...|fig16|table3|ablation|attacks|frontier|all>..."
        );
        std::process::exit(2);
    }

    let runner = if quick {
        Runner::quick()
    } else {
        Runner::new()
    };
    let all = wanted.contains(&"all");
    let want = |name: &str| all || wanted.contains(&name);

    if want("table2") {
        table2(&runner);
    }
    if want("fig5") {
        fig5(&runner);
    }
    if want("fig6") {
        fig6(&runner);
    }
    if want("fig7") {
        fig7(&runner);
    }
    if want("fig8") {
        fig8(&runner);
    }
    if want("fig9") {
        fig9(&runner);
    }
    if want("fig10") {
        fig10(&runner);
    }
    if want("fig11") {
        fig11(&runner);
    }
    if want("fig12") {
        fig12(&runner);
    }
    if want("fig13") {
        fig13(&runner);
    }
    if want("fig14") {
        fig14(&runner);
    }
    if want("fig15") {
        fig15(&runner);
    }
    if want("fig16") {
        fig16(&runner);
    }
    if want("table3") {
        table3(&runner);
    }
    if want("ablation") {
        ablation(&runner);
    }
    if want("attacks") {
        attacks(&runner);
    }
    // Deliberately excluded from `all`: the full frontier anonymizes the
    // scaling nets (I, J, K) three times each.
    if wanted.contains(&"frontier") {
        frontier(quick);
    }
}

fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Table 2: the evaluation networks.
fn table2(runner: &Runner) {
    header("Table 2: evaluation networks");
    println!(
        "{:<3} {:<11} {:>4} {:>4} {:>4} {:>8}  Type",
        "ID", "Network", "|R|", "|H|", "|E|", "#lines"
    );
    for net in runner.suite() {
        let (r, h, e, lines) = net.stats();
        println!(
            "{:<3} {:<11} {:>4} {:>4} {:>4} {:>8}  {}",
            net.id, net.name, r, h, e, lines, net.network_type
        );
    }
}

/// Figure 5: average number of distinct paths between edge routers,
/// k_R=6, k_H=2.
fn fig5(runner: &Runner) {
    header(
        "Figure 5: route anonymity N_r (avg/min distinct paths per edge-router pair), k_R=6 k_H=2",
    );
    println!(
        "{:<3} {:>9} {:>9} {:>9} {:>9}",
        "ID", "orig avg", "anon avg", "orig min", "anon min"
    );
    let mut avgs = Vec::new();
    for net in runner.suite() {
        let run = runner.default_run(net.id);
        let orig = confmask::metrics::route_anonymity(&run.baseline.sim.dataplane);
        let anon = run.route_anonymity();
        avgs.push(anon.avg());
        println!(
            "{:<3} {:>9.2} {:>9.2} {:>9} {:>9}",
            net.id,
            orig.avg(),
            anon.avg(),
            orig.min(),
            anon.min()
        );
    }
    println!("average anonymized N_r over networks: {:.2}", mean(&avgs));
}

/// Figure 6: minimum number of nodes sharing the same degree, k_R=6, k_H=2.
fn fig6(runner: &Runner) {
    header("Figure 6: topology anonymity k_d (min #routers sharing a degree), k_R=6 k_H=2");
    println!("{:<3} {:>6} {:>6}  anon >= k_R?", "ID", "orig", "anon");
    for net in runner.suite() {
        let run = runner.default_run(net.id);
        let orig = min_same_degree(&run.baseline.topo);
        let anon = min_same_degree(&extract_topology(&run.configs));
        println!("{:<3} {:>6} {:>6}  {}", net.id, orig, anon, anon >= 6);
    }
}

/// Figure 7: clustering coefficients, original vs anonymized.
fn fig7(runner: &Runner) {
    header("Figure 7: clustering coefficient, k_R=6 k_H=2");
    println!("{:<3} {:>8} {:>8} {:>8}", "ID", "orig", "anon", "delta");
    let mut deltas = Vec::new();
    for net in runner.suite() {
        let run = runner.default_run(net.id);
        let orig = clustering_coefficient(&run.baseline.topo);
        let anon = clustering_coefficient(&extract_topology(&run.configs));
        deltas.push((anon - orig).abs());
        println!(
            "{:<3} {:>8.3} {:>8.3} {:>8.3}",
            net.id,
            orig,
            anon,
            anon - orig
        );
    }
    println!("average |delta|: {:.3}", mean(&deltas));
}

/// Figure 8: proportion of exactly kept host-to-host paths. The NetHide
/// baseline is selected through the `Anonymizer` trait, so the comparison
/// column is exactly what `--strategy nethide` produces.
fn fig8(runner: &Runner) {
    use confmask::{anonymizer_for, Strategy};
    header("Figure 8: exactly kept paths P_U — ConfMask vs NetHide");
    println!("{:<3} {:>9} {:>9}", "ID", "ConfMask", "NetHide");
    let mut nh_scores = Vec::new();
    for net in runner.suite() {
        let run = runner.default_run(net.id);
        let confmask_pu = run.path_preservation();
        let nh = anonymizer_for(Strategy::NetHide)
            .anonymize(&net.configs, &confmask::Params::new(6, 2))
            .expect("nethide");
        let nh_pu = nh.kept_path_ratio();
        nh_scores.push(nh_pu);
        println!("{:<3} {:>9.3} {:>9.3}", net.id, confmask_pu, nh_pu);
    }
    println!(
        "NetHide average P_U: {:.3} (paper: ~0.15, max < 0.30)",
        mean(&nh_scores)
    );
}

/// Figure 9: preserved network specifications via the spec miner,
/// k_R=6, k_H=4.
fn fig9(runner: &Runner) {
    header("Figure 9: preserved specifications (kept ratio / introduced ratio), k_R=6 k_H=4");
    println!(
        "{:<3} {:>8} {:>8} {:>8} {:>8} {:>10}",
        "ID", "CM kept", "NH kept", "CM intr", "NH intr", "CM intr-fake"
    );
    let (mut cm_kept, mut nh_kept) = (Vec::new(), Vec::new());
    for net in runner.suite() {
        let run = runner.run(RunKey {
            net: net.id,
            k_r: 6,
            k_h: 4,
            mode: EquivalenceMode::ConfMask,
            seed: 0,
        });
        let orig_spec = confmask_spec::mine(&run.baseline.sim.dataplane);
        let cm_spec = confmask_spec::mine(&run.final_sim.dataplane);
        let cm = confmask_spec::diff(&orig_spec, &cm_spec, &run.baseline.real_hosts);

        let nh = confmask::anonymizer_for(confmask::Strategy::NetHide)
            .anonymize(&net.configs, &confmask::Params::new(6, 4))
            .expect("nethide");
        let nh_spec = confmask_spec::mine(&nh.dataplane);
        let nhd = confmask_spec::diff(&orig_spec, &nh_spec, &run.baseline.real_hosts);

        cm_kept.push(cm.kept_ratio());
        nh_kept.push(nhd.kept_ratio());
        println!(
            "{:<3} {:>8.3} {:>8.3} {:>8.2} {:>8.2} {:>10.3}",
            net.id,
            cm.kept_ratio(),
            nhd.kept_ratio(),
            cm.introduced_ratio(),
            nhd.introduced_ratio(),
            cm.introduced_fake_fraction()
        );
    }
    let (cm, nh) = (mean(&cm_kept), mean(&nh_kept));
    println!(
        "avg kept: ConfMask {:.3} vs NetHide {:.3}; missing-spec reduction {:.0}%",
        cm,
        nh,
        100.0 * (1.0 - (1.0 - cm) / (1.0 - nh).max(1e-9))
    );
}

/// Figure 10: anonymity (L) and injected lines (R) across strawmen and
/// ConfMask.
fn fig10(runner: &Runner) {
    header("Figure 10: N_r (L) and injected-line % (R) — Strawman1 / Strawman2 / ConfMask, k_R=6 k_H=2");
    println!(
        "{:<3} {:>8} {:>8} {:>8}   {:>8} {:>8} {:>8}",
        "ID", "S1 N_r", "S2 N_r", "CM N_r", "S1 inj%", "S2 inj%", "CM inj%"
    );
    let mut rows: Vec<[f64; 6]> = Vec::new();
    for net in runner.suite() {
        let mut row = [0.0f64; 6];
        for (i, mode) in [
            EquivalenceMode::Strawman1,
            EquivalenceMode::Strawman2,
            EquivalenceMode::ConfMask,
        ]
        .iter()
        .enumerate()
        {
            let run = runner.run(RunKey {
                net: net.id,
                k_r: 6,
                k_h: 2,
                mode: *mode,
                seed: 0,
            });
            row[i] = run.route_anonymity().avg();
            row[i + 3] = 100.0 * (1.0 - run.config_utility());
        }
        println!(
            "{:<3} {:>8.2} {:>8.2} {:>8.2}   {:>8.1} {:>8.1} {:>8.1}",
            net.id, row[0], row[1], row[2], row[3], row[4], row[5]
        );
        rows.push(row);
    }
    let col = |i: usize| mean(&rows.iter().map(|r| r[i]).collect::<Vec<_>>());
    println!(
        "averages: N_r S1 {:.2} S2 {:.2} CM {:.2}; injected% S1 {:.1} S2 {:.1} CM {:.1}",
        col(0),
        col(1),
        col(2),
        col(3),
        col(4),
        col(5)
    );
}

fn sweep_k_r(runner: &Runner) -> Vec<(char, usize, f64, f64)> {
    let mut out = Vec::new();
    for net in runner.suite() {
        for k_r in [2usize, 6, 10] {
            let run = runner.run(RunKey {
                net: net.id,
                k_r,
                k_h: 2,
                mode: EquivalenceMode::ConfMask,
                seed: 0,
            });
            out.push((
                net.id,
                k_r,
                run.route_anonymity().avg(),
                run.config_utility(),
            ));
        }
    }
    out
}

fn sweep_k_h(runner: &Runner) -> Vec<(char, usize, f64, f64)> {
    let mut out = Vec::new();
    for net in runner.suite() {
        for k_h in [2usize, 4, 6] {
            let run = runner.run(RunKey {
                net: net.id,
                k_r: 6,
                k_h,
                mode: EquivalenceMode::ConfMask,
                seed: 0,
            });
            out.push((
                net.id,
                k_h,
                run.route_anonymity().avg(),
                run.config_utility(),
            ));
        }
    }
    out
}

/// Figure 11: impact of k_R on N_r.
fn fig11(runner: &Runner) {
    header("Figure 11: impact of k_R on route anonymity N_r (k_H=2)");
    println!("{:<3} {:>8} {:>8} {:>8}", "ID", "k_R=2", "k_R=6", "k_R=10");
    print_sweep(&sweep_k_r(runner), |r| r.2, &[2, 6, 10]);
}

/// Figure 12: impact of k_H on N_r.
fn fig12(runner: &Runner) {
    header("Figure 12: impact of k_H on route anonymity N_r (k_R=6)");
    println!("{:<3} {:>8} {:>8} {:>8}", "ID", "k_H=2", "k_H=4", "k_H=6");
    print_sweep(&sweep_k_h(runner), |r| r.2, &[2, 4, 6]);
}

/// Figure 13: impact of k_R on configuration utility U_C.
fn fig13(runner: &Runner) {
    header("Figure 13: impact of k_R on config utility U_C (k_H=2)");
    println!("{:<3} {:>8} {:>8} {:>8}", "ID", "k_R=2", "k_R=6", "k_R=10");
    print_sweep(&sweep_k_r(runner), |r| r.3, &[2, 6, 10]);
}

/// Figure 14: impact of k_H on U_C.
fn fig14(runner: &Runner) {
    header("Figure 14: impact of k_H on config utility U_C (k_R=6)");
    println!("{:<3} {:>8} {:>8} {:>8}", "ID", "k_H=2", "k_H=4", "k_H=6");
    print_sweep(&sweep_k_h(runner), |r| r.3, &[2, 4, 6]);
}

fn print_sweep(
    rows: &[(char, usize, f64, f64)],
    pick: impl Fn(&(char, usize, f64, f64)) -> f64,
    ks: &[usize],
) {
    let nets: Vec<char> = {
        let mut v: Vec<char> = rows.iter().map(|r| r.0).collect();
        v.dedup();
        v
    };
    let mut col_means = vec![Vec::new(); ks.len()];
    for net in nets {
        print!("{net:<3}");
        for (i, k) in ks.iter().enumerate() {
            let row = rows
                .iter()
                .find(|r| r.0 == net && r.1 == *k)
                .expect("sweep covers the grid");
            let v = pick(row);
            col_means[i].push(v);
            print!(" {v:>8.3}");
        }
        println!();
    }
    print!("avg");
    for c in &col_means {
        print!(" {:>8.3}", mean(c));
    }
    println!();
}

/// Figure 15: N_r vs U_C correlation over all sweep runs.
fn fig15(runner: &Runner) {
    header("Figure 15: route anonymity N_r vs config utility U_C (all sweep runs)");
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (_, _, nr, uc) in sweep_k_r(runner).into_iter().chain(sweep_k_h(runner)) {
        xs.push(nr);
        ys.push(uc);
    }
    for (x, y) in xs.iter().zip(&ys) {
        println!("N_r={x:.3} U_C={y:.3}");
    }
    match pearson(&xs, &ys) {
        Some(r) => println!("Pearson r = {r:.2} (paper: -0.36, loose negative correlation)"),
        None => println!("Pearson r undefined (degenerate sample)"),
    }
}

/// Figure 16: end-to-end running-time comparison.
fn fig16(runner: &Runner) {
    header("Figure 16: end-to-end running time — Strawman1 / Strawman2 / ConfMask, k_R=6 k_H=2");
    println!(
        "{:<3} {:>10} {:>10} {:>10}   (S2/CM slowdown)",
        "ID", "S1", "S2", "CM"
    );
    for net in runner.suite() {
        let mut secs = [0.0f64; 3];
        for (i, mode) in [
            EquivalenceMode::Strawman1,
            EquivalenceMode::Strawman2,
            EquivalenceMode::ConfMask,
        ]
        .iter()
        .enumerate()
        {
            let run = runner.run(RunKey {
                net: net.id,
                k_r: 6,
                k_h: 2,
                mode: *mode,
                seed: 0,
            });
            secs[i] = run.total_stage_time().as_secs_f64();
        }
        println!(
            "{:<3} {:>9.3}s {:>9.3}s {:>9.3}s   ({:.1}x)",
            net.id,
            secs[0],
            secs[1],
            secs[2],
            secs[1] / secs[2].max(1e-9)
        );
    }
}

/// Ablation of the §3.2 fake-link cost strategies (Figure 2b–2d turned
/// into measurements).
fn ablation(runner: &Runner) {
    use confmask::attacks::fake_link_camouflage;
    use confmask::{anonymize, CostStrategy, Params};
    header("Ablation: fake-link cost strategies (§3.2) — equivalence and camouflage");
    println!(
        "{:<3} {:<12} {:>12} {:>11} {:>10}",
        "ID", "strategy", "equivalence", "fake links", "camouflage"
    );
    let _ = runner;
    // OSPF-only networks (the §3.2 cost discussion is about link-state
    // metrics; BGP fake sessions carry no OSPF cost).
    let nets: Vec<(&str, confmask::NetworkConfigs)> = vec![
        ("ex4", confmask_netgen::smallnets::example_network()),
        (
            "wan",
            confmask_netgen::synthesize(&confmask_netgen::wan::wan_spec("abl", 16, 8, 32, 3)),
        ),
        (
            "ft4",
            confmask_netgen::synthesize(&confmask_netgen::fattree::fattree_spec(4)),
        ),
    ];
    for (id, configs) in &nets {
        for (label, strategy) in [
            ("default", CostStrategy::DefaultCost),
            ("large", CostStrategy::LargeCost),
            ("min-cost", CostStrategy::MinCost),
        ] {
            let params = Params {
                k_r: if *id == "ft4" { 10 } else { 6 },
                k_h: 4,
                cost_strategy: strategy,
                ..Params::default()
            };
            match anonymize(configs, &params) {
                Ok(r) => {
                    let cam = fake_link_camouflage(&r.final_sim, &r.fake_links);
                    println!(
                        "{:<3} {:<12} {:>12} {:>11} {:>9.0}%",
                        id,
                        label,
                        "holds",
                        r.fake_links.len(),
                        100.0 * cam
                    );
                }
                Err(e) => {
                    let kind = match e {
                        confmask::Error::EquivalenceViolated(_) => "VIOLATED",
                        confmask::Error::EquivalenceDiverged { .. } => "DIVERGED",
                        _ => "ERROR",
                    };
                    println!(
                        "{:<3} {:<12} {:>12} {:>11} {:>10}",
                        id, label, kind, "-", "-"
                    );
                }
            }
        }
    }
    println!("(default cost breaks route equivalence; large cost leaves dead links; min-cost does neither)");
}

/// De-anonymization attack outcomes (§5.4 privacy analysis), evaluated
/// for every registered strategy: the degree re-identification adversary
/// runs against each strategy's shared topology, so the table is a
/// three-way privacy comparison rather than a ConfMask-only report.
fn attacks(runner: &Runner) {
    use confmask::attacks::{degree_reidentification, detect_unified_filter_pattern};
    use confmask::{anonymize, anonymizer_for, EquivalenceMode, Params, Strategy};
    header("Attacks: degree re-identification (per strategy) and the Strawman-1 pattern");
    println!(
        "{:<3} {:>12} {:>9} {:>9} {:>9} {:>10} {:>10}",
        "ID", "reid before", "CM", "NH", "NC", "S1 pattern", "CM pattern"
    );
    for net in runner.suite() {
        let run = runner.default_run(net.id);
        let orig = extract_topology(&net.configs);
        let before = degree_reidentification(&orig, &orig);
        let mut after = [0.0f64; 3];
        for (i, strategy) in Strategy::ALL.into_iter().enumerate() {
            // The ConfMask run is the (cached) default run; the others go
            // through the trait with the same parameters.
            let shared = if strategy == Strategy::ConfMask {
                extract_topology(&run.configs)
            } else {
                let r = anonymizer_for(strategy)
                    .anonymize(&net.configs, &Params::new(6, 2))
                    .unwrap_or_else(|e| panic!("{strategy} on {}: {e}", net.id));
                extract_topology(&r.configs)
            };
            after[i] = degree_reidentification(&orig, &shared).expected_success();
        }
        let s1 = anonymize(
            &net.configs,
            &Params::default().with_mode(EquivalenceMode::Strawman1),
        )
        .expect("strawman1");
        let s1_hits = detect_unified_filter_pattern(&s1.configs).len();
        let cm_hits = detect_unified_filter_pattern(&run.configs).len();
        println!(
            "{:<3} {:>11.3} {:>9.3} {:>9.3} {:>9.3} {:>10} {:>10}",
            net.id,
            before.expected_success(),
            after[0],
            after[1],
            after[2],
            s1_hits,
            cm_hits
        );
    }
    println!(
        "(reid = adversary's expected success probability per strategy; \
         ConfMask must stay <= 1/k_R ~ 0.167)"
    );
}

/// The k = 2 resilience profile of one configuration set: the fraction of
/// `K2_FRONTIER_SAMPLE` seeded double-link failures that degrade no
/// reported pair beyond a reroute (no black hole, partition, or loop).
/// Streams through the incremental engine into a [`SweepSummary`] — only
/// the worst-class histogram is ever retained. `None` when the healthy
/// network fails to converge.
fn k2_clean_fraction(
    configs: &confmask_config::NetworkConfigs,
    real_hosts: Option<&std::collections::BTreeSet<String>>,
) -> Option<f64> {
    use confmask_sim::fault::{sample_double_link_failures, DegradationClass};
    use confmask_sim::SweepSummary;
    let engine = confmask_sim_delta::DeltaEngine::global();
    let conv = engine.converged(configs).ok()?;
    let baseline = match real_hosts {
        Some(hosts) => conv.sim.dataplane.restricted_to(hosts),
        None => conv.sim.dataplane.clone(),
    };
    let sweep = engine.sweep(&conv, &baseline);
    let mut summary = SweepSummary::default();
    sweep.run(
        sample_double_link_failures(configs, 0, K2_FRONTIER_SAMPLE),
        &mut summary,
    );
    Some(summary.clean_fraction(DegradationClass::Rerouted))
}

/// Double-link scenarios sampled per network for the frontier's k = 2
/// resilience columns.
const K2_FRONTIER_SAMPLE: usize = 16;

/// Formats an optional clean fraction, `-` when simulation failed.
fn fmt_frac(v: Option<f64>) -> String {
    v.map_or_else(|| "-".to_string(), |v| format!("{v:.3}"))
}

/// The three-strategy privacy/utility/runtime frontier over the extended
/// suite (Table 2 plus FatTree(16) and the scaling WANs). Every strategy
/// is selected through the `Anonymizer` trait; per (net, strategy) the row
/// reports kept-path ratio, kept-spec ratio, degree re-identification
/// success, k = 2 resilience (original vs anonymized, via the streaming
/// fault sweep), and wall time.
fn frontier(quick: bool) {
    use confmask::attacks::degree_reidentification;
    use confmask::{anonymizer_for, Params, Strategy};
    header("Frontier: privacy / utility / runtime across strategies (k_R=6, k_H=2)");
    let suite = confmask_netgen::extended_suite();
    // Quick mode keeps CI affordable; the full run covers the scaling nets
    // the frontier exists for (I = FatTree16, J/K = large WANs).
    let ids: &[char] = if quick {
        &['A', 'B', 'G']
    } else {
        &['A', 'B', 'C', 'D', 'G', 'H', 'I', 'J', 'K']
    };
    println!(
        "{:<3} {:>4} {:<9} {:>10} {:>10} {:>8} {:>8} {:>8} {:>7} {:>7} {:>10}",
        "ID", "|R|", "strategy", "kept-path", "kept-spec", "reid", "k2-orig", "k2-anon", "+R",
        "+E", "wall"
    );
    for id in ids {
        let Some(net) = suite.iter().find(|n| n.id == *id) else {
            continue;
        };
        let orig_topo = extract_topology(&net.configs);
        let orig_k2 = k2_clean_fraction(&net.configs, None);
        let mut orig_spec = None;
        for strategy in Strategy::ALL {
            let result = match anonymizer_for(strategy)
                .anonymize(&net.configs, &Params::new(6, 2))
            {
                Ok(r) => r,
                Err(e) => {
                    println!(
                        "{:<3} {:>4} {:<9} failed: {e}",
                        net.id,
                        net.configs.routers.len(),
                        strategy.name()
                    );
                    continue;
                }
            };
            let spec_base = orig_spec
                .get_or_insert_with(|| confmask_spec::mine(&result.baseline_dataplane));
            let anon_spec = confmask_spec::mine(&result.dataplane);
            let sd = confmask_spec::diff(spec_base, &anon_spec, &result.real_hosts);
            let reid =
                degree_reidentification(&orig_topo, &extract_topology(&result.configs));
            let anon_k2 = k2_clean_fraction(&result.configs, Some(&result.real_hosts));
            println!(
                "{:<3} {:>4} {:<9} {:>10.3} {:>10.3} {:>8.3} {:>8} {:>8} {:>7} {:>7} {:>9.1}s",
                net.id,
                net.configs.routers.len(),
                strategy.name(),
                result.kept_path_ratio(),
                sd.kept_ratio(),
                reid.expected_success(),
                fmt_frac(orig_k2),
                fmt_frac(anon_k2),
                result.fake_routers,
                result.fake_links,
                result.wall.as_secs_f64()
            );
        }
    }
    println!(
        "(kept-path = Fig 8 metric; kept-spec = Fig 9 metric; reid = degree \
         re-identification success; k2-orig/k2-anon = fraction of {K2_FRONTIER_SAMPLE} \
         sampled double-link failures degrading no pair beyond a reroute, original \
         vs anonymized real pairs; +R/+E = added routers/links; wall = one \
         anonymization run)"
    );
}

/// Table 3: added-line breakdown per network and parameter setting.
fn table3(runner: &Runner) {
    header("Table 3: # lines added by category (Appendix C)");
    println!(
        "{:<28} {:>9} {:>8} {:>9} {:>8} {:>7}",
        "Network, parameters", "protocol", "filter", "interface", "total", "U_C"
    );
    // The Table 3 grid: nets D (BICS), E (Columbus), B (≈CCNP), H
    // (FatTree-08) over the parameter grid, plus F (USCarrier) at defaults.
    let grid: Vec<(char, &str, usize, usize)> = vec![
        ('D', "BICS", 2, 2),
        ('D', "BICS", 6, 2),
        ('D', "BICS", 6, 4),
        ('D', "BICS", 10, 2),
        ('E', "Columbus", 2, 2),
        ('E', "Columbus", 6, 2),
        ('E', "Columbus", 6, 4),
        ('E', "Columbus", 10, 2),
        ('B', "CCNP", 2, 2),
        ('B', "CCNP", 6, 2),
        ('B', "CCNP", 6, 4),
        ('B', "CCNP", 10, 2),
        ('H', "FatTree-08", 2, 2),
        ('H', "FatTree-08", 6, 2),
        ('H', "FatTree-08", 6, 4),
        ('H', "FatTree-08", 10, 2),
        ('F', "USCarrier", 6, 2),
    ];
    for (id, name, k_r, k_h) in grid {
        if runner.network(id).is_none() {
            continue; // --quick mode skips large nets
        }
        let run = runner.run(RunKey {
            net: id,
            k_r,
            k_h,
            mode: EquivalenceMode::ConfMask,
            seed: 0,
        });
        let l = run.ledger;
        println!(
            "{:<28} {:>9} {:>8} {:>9} {:>8} {:>7.3}",
            format!("{name}, k_R={k_r}, k_H={k_h}"),
            l.protocol_lines,
            l.filter_lines,
            l.interface_lines + l.host_lines,
            run.configs.total_lines(),
            run.config_utility()
        );
    }
}
