//! Cold vs incremental vs parallel-incremental k = 1 fault sweep.
//!
//! Sweeps every single-link failure of the chosen evaluation networks
//! three times — once with a full `simulate()` per scenario (the pre-delta
//! behaviour), once through the incremental engine sequentially (the
//! healthy baseline converges once and each scenario delta-recomputes),
//! and once with the incremental scenarios fanned out across the shared
//! executor. Every sweep's per-pair degradation classes are asserted
//! identical to the cold sweep's before any timing is reported, so
//! speedups are only ever measured on matching results.
//!
//! ```text
//! fault_sweep [--networks D,F,H] [--limit N] [--output BENCH_fault_sweep.json]
//!             [--assert-speedup X] [--assert-parallel-speedup X]
//! ```
//!
//! `--limit` caps the scenarios per network (the cold sweep on network F is
//! expensive — that being the point); `--assert-speedup X` exits non-zero
//! unless every swept network's incremental sweep was at least X times
//! faster than its cold sweep, and `--assert-parallel-speedup X` does the
//! same for the parallel sweep relative to the sequential incremental one
//! (CI uses both as regression gates on multi-core runners).

use confmask_sim::fault::{enumerate_single_link_failures, run_scenario};
use confmask_sim::simulate;
use confmask_sim_delta::DeltaEngine;
use std::fmt::Write as _;
use std::time::Instant;

struct Row {
    id: char,
    name: &'static str,
    scenarios: usize,
    cold_secs: f64,
    incremental_secs: f64,
    parallel_secs: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        ratio(self.cold_secs, self.incremental_secs)
    }

    /// Parallel-incremental speedup over the sequential incremental sweep.
    fn parallel_speedup(&self) -> f64 {
        ratio(self.incremental_secs, self.parallel_secs)
    }
}

fn ratio(num: f64, den: f64) -> f64 {
    if den > 0.0 {
        num / den
    } else {
        f64::INFINITY
    }
}

fn main() {
    let mut networks: Vec<char> = vec!['D', 'F', 'H'];
    let mut limit: Option<usize> = None;
    let mut output = String::from("BENCH_fault_sweep.json");
    let mut assert_speedup: Option<f64> = None;
    let mut assert_parallel_speedup: Option<f64> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("{flag} requires a value");
                    std::process::exit(2);
                })
                .clone()
        };
        match flag.as_str() {
            "--networks" => {
                networks = value(flag)
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.trim().chars().next().unwrap().to_ascii_uppercase())
                    .collect();
            }
            "--limit" => {
                limit = Some(value(flag).parse().unwrap_or_else(|_| {
                    eprintln!("--limit expects an integer");
                    std::process::exit(2);
                }));
            }
            "--output" => output = value(flag),
            "--assert-speedup" => {
                assert_speedup = Some(value(flag).parse().unwrap_or_else(|_| {
                    eprintln!("--assert-speedup expects a number");
                    std::process::exit(2);
                }));
            }
            "--assert-parallel-speedup" => {
                assert_parallel_speedup = Some(value(flag).parse().unwrap_or_else(|_| {
                    eprintln!("--assert-parallel-speedup expects a number");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!(
                    "unknown flag '{other}'\nusage: fault_sweep [--networks D,F,H] \
                     [--limit N] [--output FILE] [--assert-speedup X] \
                     [--assert-parallel-speedup X]"
                );
                std::process::exit(2);
            }
        }
    }

    let suite = confmask_netgen::full_suite();
    let mut rows = Vec::new();
    for id in networks {
        let net = suite.iter().find(|n| n.id == id).unwrap_or_else(|| {
            eprintln!("no evaluation network '{id}'");
            std::process::exit(2);
        });
        let configs = &net.configs;
        let mut scenarios = enumerate_single_link_failures(configs);
        if let Some(l) = limit {
            scenarios.truncate(l);
        }
        eprintln!(
            "net {id} ({}): {} scenario(s) at k=1",
            net.name,
            scenarios.len()
        );

        // Cold sweep: a full simulation of the healthy network, then a full
        // simulation per scenario (what `run_scenario` does internally).
        // Only the engine work is timed — outcome storage and comparison
        // bookkeeping (a bench artifact) stay outside the clock.
        let t0 = Instant::now();
        let baseline = simulate(configs).expect("healthy network must simulate");
        let mut cold_time = t0.elapsed();
        let mut cold = Vec::with_capacity(scenarios.len());
        for s in &scenarios {
            let t = Instant::now();
            let outcome = run_scenario(configs, &baseline.dataplane, s).expect("cold scenario");
            cold_time += t.elapsed();
            cold.push(outcome);
        }
        let cold_secs = cold_time.as_secs_f64();

        // Incremental sweep: pays for its own baseline convergence (a fresh
        // engine, so nothing leaks in from the cold sweep), then
        // delta-recomputes every scenario. Each outcome is differentially
        // checked against the cold sweep's (outside the clock) and dropped.
        let t1 = Instant::now();
        let engine = DeltaEngine::new(4);
        let base = engine
            .converged(configs)
            .expect("healthy network must converge");
        let mut incremental_time = t1.elapsed();
        let mut mismatches = 0usize;
        for (s, c) in scenarios.iter().zip(cold.iter()) {
            let t = Instant::now();
            let outcome = engine
                .run_scenario(&base, &base.sim.dataplane, s)
                .expect("incremental scenario");
            incremental_time += t.elapsed();
            if &outcome != c {
                eprintln!("net {id}: MISMATCH on {}", c.scenario);
                mismatches += 1;
            }
        }
        let incremental_secs = incremental_time.as_secs_f64();

        // Parallel-incremental sweep: same fresh-engine setup, but the
        // scenarios fan out across the shared executor with one scratch
        // per worker. The whole batch is timed as one region (that is the
        // wall-clock a caller observes) and every outcome is again
        // differentially checked against the cold sweep.
        let t2 = Instant::now();
        let par_engine = DeltaEngine::new(4);
        let par_base = par_engine
            .converged(configs)
            .expect("healthy network must converge");
        let outcomes = par_engine.run_scenarios(&par_base, &par_base.sim.dataplane, &scenarios);
        let parallel_secs = t2.elapsed().as_secs_f64();
        for (outcome, c) in outcomes.iter().zip(cold.iter()) {
            let outcome = outcome.as_ref().expect("parallel scenario");
            if outcome != c {
                eprintln!("net {id}: PARALLEL MISMATCH on {}", c.scenario);
                mismatches += 1;
            }
        }

        // Differential gate: identical outcomes or no timing at all.
        if mismatches > 0 {
            eprintln!("net {id}: {mismatches} differential mismatch(es) — aborting");
            std::process::exit(1);
        }

        let row = Row {
            id,
            name: net.name,
            scenarios: scenarios.len(),
            cold_secs,
            incremental_secs,
            parallel_secs,
        };
        println!(
            "net {id}: cold {:.2}s, incremental {:.2}s ({:.1}x), parallel {:.2}s \
             ({:.1}x over incremental, {} thread(s)), 0 mismatches",
            row.cold_secs,
            row.incremental_secs,
            row.speedup(),
            row.parallel_secs,
            row.parallel_speedup(),
            confmask_exec::thread_count()
        );
        rows.push(row);
    }

    let mut json = String::from("{\n  \"bench\": \"fault_sweep\",\n  \"k\": 1,\n");
    let _ = writeln!(
        json,
        "  \"limit\": {},",
        limit.map_or("null".into(), |l| l.to_string())
    );
    let _ = writeln!(json, "  \"threads\": {},", confmask_exec::thread_count());
    json.push_str("  \"networks\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"id\": \"{}\", \"name\": \"{}\", \"scenarios\": {}, \
             \"cold_secs\": {:.3}, \"incremental_secs\": {:.3}, \"speedup\": {:.2}, \
             \"parallel_secs\": {:.3}, \"parallel_speedup\": {:.2}, \
             \"mismatches\": 0}}",
            r.id,
            r.name,
            r.scenarios,
            r.cold_secs,
            r.incremental_secs,
            r.speedup(),
            r.parallel_secs,
            r.parallel_speedup()
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&output, &json) {
        eprintln!("cannot write {output}: {e}");
        std::process::exit(1);
    }
    println!("wrote {output}");

    if let Some(min) = assert_speedup {
        for r in &rows {
            if r.speedup() < min {
                eprintln!(
                    "net {}: speedup {:.2}x below required {min}x",
                    r.id,
                    r.speedup()
                );
                std::process::exit(1);
            }
        }
        println!("speedup gate: every network >= {min}x");
    }
    if let Some(min) = assert_parallel_speedup {
        for r in &rows {
            if r.parallel_speedup() < min {
                eprintln!(
                    "net {}: parallel speedup {:.2}x below required {min}x",
                    r.id,
                    r.parallel_speedup()
                );
                std::process::exit(1);
            }
        }
        println!("parallel speedup gate: every network >= {min}x");
    }
}
