//! Cold vs incremental vs parallel-streaming fault sweep.
//!
//! Sweeps every single-link failure of the chosen evaluation networks
//! three times — once with a full `simulate()` per scenario (the pre-delta
//! behaviour), once through the streaming incremental engine sequentially
//! (the healthy baseline converges once and each scenario folds into a
//! `ScenarioDigest`), and once with the streaming sweep fanned out across
//! the shared executor in bounded windows. Every digest is asserted equal
//! to the digest folded from the cold sweep's outcome before any timing is
//! reported, so speedups are only ever measured on matching results.
//!
//! Two memory numbers accompany every row: `batch_bytes` estimates what
//! the retired collect-then-reduce sweep retained (every cold
//! `ScenarioOutcome` alive at once), and `peak_bytes` is the streaming
//! sweep's measured peak of live digests — the ratio is the point of the
//! streaming refactor. Optionally a k = 2 row exhausts (or samples, with
//! `--k2-limit`) the double-link failure space through the streaming
//! sweep alone; at k = 2 the cold sweep would take hours and the batch
//! sweep would not fit in memory, which is why only the streaming engine
//! runs there.
//!
//! ```text
//! fault_sweep [--networks D,F,H] [--limit N] [--reps N]
//!             [--output BENCH_fault_sweep.json]
//!             [--assert-speedup X] [--assert-parallel-speedup X]
//!             [--assert-peak-bytes N] [--k2-networks D|none] [--k2-limit N]
//! ```
//!
//! `--limit` caps the k = 1 scenarios per network; `--reps` (default 3)
//! repeats the two incremental sweeps — interleaved, sequential then
//! streaming within each rep, so background drift biases both sides
//! equally — and keeps the fastest of each, so the reported
//! `parallel_speedup` — a ratio of two near-equal times — is not at the
//! mercy of scheduler noise (the cold sweep runs once: at 30 s per
//! network its noise floor is irrelevant). `--assert-speedup X`
//! exits non-zero unless every swept network's incremental sweep was at
//! least X times faster than its cold sweep, `--assert-parallel-speedup X`
//! does the same for the parallel streaming sweep relative to the
//! sequential incremental one, and `--assert-peak-bytes N` fails the run
//! if any network's streaming sweep retained more than N bytes of digests
//! at its peak (CI uses all three as regression gates). The two ratio
//! gates tolerate [`RATIO_GATE_TOLERANCE`] of measurement noise — they
//! exist to catch regressions like the pre-streaming 0.57× parallel
//! penalty, not a 2 % scheduler wobble on a ratio of near-equal times;
//! the peak-bytes gate is exact (memory does not wobble).

use confmask_sim::fault::{
    enumerate_double_link_failures, enumerate_single_link_failures, run_scenario,
};
use confmask_sim::simulate;
use confmask_sim::sweep::{DigestList, PairTable, ScenarioDigest, SweepSummary};
use confmask_sim::ScenarioOutcome;
use confmask_sim_delta::{DeltaEngine, ScenarioScratch, ScenarioSweep};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Fractional slack on the `--assert-speedup` / `--assert-parallel-speedup`
/// gates: a measured ratio passes when it is within this fraction of the
/// required one. Timing ratios on a busy CI box wobble a few percent even
/// best-of-`--reps`; a genuine regression (the gates' target) is 25 %+.
const RATIO_GATE_TOLERANCE: f64 = 0.05;

struct K2Row {
    scenarios: usize,
    exhaustive: bool,
    secs: f64,
    errors: usize,
    worst_histogram: [u64; 5],
}

struct Row {
    id: char,
    name: &'static str,
    scenarios: usize,
    cold_secs: f64,
    incremental_secs: f64,
    parallel_secs: f64,
    batch_bytes: usize,
    peak_bytes: usize,
    k2: Option<K2Row>,
}

impl Row {
    fn speedup(&self) -> f64 {
        ratio(self.cold_secs, self.incremental_secs)
    }

    /// Parallel-streaming speedup over the sequential incremental sweep.
    fn parallel_speedup(&self) -> f64 {
        ratio(self.incremental_secs, self.parallel_secs)
    }
}

fn ratio(num: f64, den: f64) -> f64 {
    if den > 0.0 {
        num / den
    } else {
        f64::INFINITY
    }
}

/// Estimated heap retention of one cold outcome — what the retired
/// collect-then-reduce sweep kept alive per scenario: the per-pair
/// `BTreeMap` with two owned `String` keys per entry plus amortized node
/// overhead. An estimate (allocator slack is invisible), but a faithful
/// one, and the committed pre-refactor baseline `peak_bytes` is compared
/// against.
fn outcome_retained_bytes(out: &ScenarioOutcome) -> usize {
    use std::mem::size_of;
    let mut bytes = size_of::<ScenarioOutcome>();
    for (s, d) in out.classes.keys() {
        bytes += s.capacity()
            + d.capacity()
            + 2 * size_of::<String>()
            + size_of::<confmask_sim::DegradationClass>()
            + 16;
    }
    bytes
}

fn main() {
    let mut networks: Vec<char> = vec!['D', 'F', 'H'];
    let mut limit: Option<usize> = None;
    let mut reps: usize = 3;
    let mut output = String::from("BENCH_fault_sweep.json");
    let mut assert_speedup: Option<f64> = None;
    let mut assert_parallel_speedup: Option<f64> = None;
    let mut assert_peak_bytes: Option<usize> = None;
    let mut k2_networks: Vec<char> = vec!['D'];
    let mut k2_limit: Option<usize> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("{flag} requires a value");
                    std::process::exit(2);
                })
                .clone()
        };
        match flag.as_str() {
            "--networks" => {
                networks = value(flag)
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.trim().chars().next().unwrap().to_ascii_uppercase())
                    .collect();
            }
            "--limit" => {
                limit = Some(value(flag).parse().unwrap_or_else(|_| {
                    eprintln!("--limit expects an integer");
                    std::process::exit(2);
                }));
            }
            "--reps" => {
                reps = value(flag).parse::<usize>().unwrap_or_else(|_| {
                    eprintln!("--reps expects an integer");
                    std::process::exit(2);
                }).max(1);
            }
            "--output" => output = value(flag),
            "--assert-speedup" => {
                assert_speedup = Some(value(flag).parse().unwrap_or_else(|_| {
                    eprintln!("--assert-speedup expects a number");
                    std::process::exit(2);
                }));
            }
            "--assert-parallel-speedup" => {
                assert_parallel_speedup = Some(value(flag).parse().unwrap_or_else(|_| {
                    eprintln!("--assert-parallel-speedup expects a number");
                    std::process::exit(2);
                }));
            }
            "--assert-peak-bytes" => {
                assert_peak_bytes = Some(value(flag).parse().unwrap_or_else(|_| {
                    eprintln!("--assert-peak-bytes expects an integer byte count");
                    std::process::exit(2);
                }));
            }
            "--k2-networks" => {
                let v = value(flag);
                k2_networks = if v.eq_ignore_ascii_case("none") {
                    vec![]
                } else {
                    v.split(',')
                        .filter(|s| !s.is_empty())
                        .map(|s| s.trim().chars().next().unwrap().to_ascii_uppercase())
                        .collect()
                };
            }
            "--k2-limit" => {
                k2_limit = Some(value(flag).parse().unwrap_or_else(|_| {
                    eprintln!("--k2-limit expects an integer");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!(
                    "unknown flag '{other}'\nusage: fault_sweep [--networks D,F,H] \
                     [--limit N] [--reps N] [--output FILE] [--assert-speedup X] \
                     [--assert-parallel-speedup X] [--assert-peak-bytes N] \
                     [--k2-networks D|none] [--k2-limit N]"
                );
                std::process::exit(2);
            }
        }
    }

    let suite = confmask_netgen::full_suite();
    let mut rows = Vec::new();
    for id in networks {
        let net = suite.iter().find(|n| n.id == id).unwrap_or_else(|| {
            eprintln!("no evaluation network '{id}'");
            std::process::exit(2);
        });
        let configs = &net.configs;
        let mut scenarios = enumerate_single_link_failures(configs);
        if let Some(l) = limit {
            scenarios.truncate(l);
        }
        eprintln!(
            "net {id} ({}): {} scenario(s) at k=1",
            net.name,
            scenarios.len()
        );

        // Cold sweep: a full simulation of the healthy network, then a full
        // simulation per scenario (what `run_scenario` does internally).
        // Only the engine work is timed — digest folding and memory
        // accounting (bench artifacts) stay outside the clock. The folded
        // digests become the differential reference for both streaming
        // sweeps, and the outcome sizes sum to `batch_bytes`: what the
        // retired collect-then-reduce sweep would have held live at once.
        let t0 = Instant::now();
        let baseline = simulate(configs).expect("healthy network must simulate");
        let mut cold_time = t0.elapsed();
        let table = Arc::new(PairTable::from_baseline(&baseline.dataplane));
        let mut cold = Vec::with_capacity(scenarios.len());
        let mut batch_bytes = 0usize;
        for s in &scenarios {
            let t = Instant::now();
            let outcome = run_scenario(configs, &baseline.dataplane, s).expect("cold scenario");
            cold_time += t.elapsed();
            batch_bytes += outcome_retained_bytes(&outcome);
            cold.push(ScenarioDigest::from_outcome(&outcome, &table));
        }
        let cold_secs = cold_time.as_secs_f64();

        // Incremental and parallel-streaming sweeps, interleaved: each rep
        // measures the sequential per-scenario digest loop and the streaming
        // fan-out back-to-back, so background drift on a shared box biases
        // both sides equally and the reported ratio (`parallel_speedup`, a
        // ratio of two near-equal times on one core) stays honest. Each side
        // pays for its own baseline convergence (a fresh engine per rep, so
        // nothing leaks in from the cold sweep or the other side), and both
        // are timed as one block — setup, sweep, digest retention. The
        // differential check against the cold folds runs outside the clocks,
        // first rep only. Best of `reps` per side.
        let mut incremental_secs = f64::INFINITY;
        let mut parallel_secs = f64::INFINITY;
        let mut peak_bytes = 0usize;
        let mut mismatches = 0usize;
        for rep in 0..reps {
            let t1 = Instant::now();
            let engine = DeltaEngine::new(4);
            let base = engine
                .converged(configs)
                .expect("healthy network must converge");
            let sweep =
                ScenarioSweep::with_table(&engine, &base, &base.sim.dataplane, Arc::clone(&table))
                    .expect("cold and warm sweeps share one pair set");
            let mut scratch = ScenarioScratch::default();
            let mut digests = Vec::with_capacity(scenarios.len());
            for s in &scenarios {
                digests.push(sweep.digest(s, &mut scratch).expect("incremental scenario"));
            }
            incremental_secs = incremental_secs.min(t1.elapsed().as_secs_f64());
            if rep == 0 {
                for (s, (digest, c)) in scenarios.iter().zip(digests.iter().zip(cold.iter())) {
                    if digest != c {
                        eprintln!("net {id}: MISMATCH on {s}");
                        mismatches += 1;
                    }
                }
            }
            drop(digests);

            // The streaming side: scenarios fan out across the shared
            // executor in bounded windows with one scratch per worker, and
            // at most one window of digests is ever live — its measured
            // peak is `peak_bytes`.
            let t2 = Instant::now();
            let par_engine = DeltaEngine::new(4);
            let par_base = par_engine
                .converged(configs)
                .expect("healthy network must converge");
            let par_sweep = ScenarioSweep::with_table(
                &par_engine,
                &par_base,
                &par_base.sim.dataplane,
                Arc::clone(&table),
            )
            .expect("cold and warm sweeps share one pair set");
            let mut streamed = DigestList::default();
            let stats = par_sweep.run(scenarios.iter(), &mut streamed);
            parallel_secs = parallel_secs.min(t2.elapsed().as_secs_f64());
            peak_bytes = peak_bytes.max(stats.peak_digest_bytes);
            if rep == 0 {
                for ((s, digest), c) in scenarios.iter().zip(&streamed.results).zip(cold.iter()) {
                    let digest = digest.as_ref().expect("parallel scenario");
                    if digest != c {
                        eprintln!("net {id}: PARALLEL MISMATCH on {s}");
                        mismatches += 1;
                    }
                }
            }
        }

        // Differential gate: identical digests or no timing at all.
        if mismatches > 0 {
            eprintln!("net {id}: {mismatches} differential mismatch(es) — aborting");
            std::process::exit(1);
        }
        drop(cold);

        // Optional k = 2 row: the double-link failure space, streamed through
        // the incremental engine only, reduced to a summary (histograms of
        // worst classes) with nothing retained per scenario.
        let k2 = if k2_networks.contains(&id) {
            let all = enumerate_double_link_failures(configs);
            let total = all.len();
            let capped = k2_limit.map_or(total, |l| l.min(total));
            eprintln!(
                "net {id}: streaming {capped}/{total} scenario(s) at k=2{}",
                if capped == total { " (exhaustive)" } else { "" }
            );
            let k2_engine = DeltaEngine::new(4);
            let k2_base = k2_engine
                .converged(configs)
                .expect("healthy network must converge");
            let k2_sweep = k2_engine.sweep(&k2_base, &k2_base.sim.dataplane);
            let mut summary = SweepSummary::default();
            let t3 = Instant::now();
            let k2_stats = k2_sweep.run(all.take(capped), &mut summary);
            let secs = t3.elapsed().as_secs_f64();
            Some(K2Row {
                scenarios: k2_stats.scenarios,
                exhaustive: capped == total,
                secs,
                errors: k2_stats.errors,
                worst_histogram: summary.worst_histogram,
            })
        } else {
            None
        };

        let row = Row {
            id,
            name: net.name,
            scenarios: scenarios.len(),
            cold_secs,
            incremental_secs,
            parallel_secs,
            batch_bytes,
            peak_bytes,
            k2,
        };
        println!(
            "net {id}: cold {:.2}s, incremental {:.2}s ({:.1}x), parallel {:.2}s \
             ({:.1}x over incremental, {} thread(s)), 0 mismatches",
            row.cold_secs,
            row.incremental_secs,
            row.speedup(),
            row.parallel_secs,
            row.parallel_speedup(),
            confmask_exec::thread_count()
        );
        println!(
            "net {id}: batch {} B retained pre-refactor, streaming peak {} B ({:.0}x smaller)",
            row.batch_bytes,
            row.peak_bytes,
            ratio(row.batch_bytes as f64, row.peak_bytes as f64)
        );
        if let Some(k2) = &row.k2 {
            println!(
                "net {id}: k=2 {}{} scenario(s) in {:.2}s ({:.1}/s), {} error(s), worst histogram {:?}",
                k2.scenarios,
                if k2.exhaustive { " (exhaustive)" } else { "" },
                k2.secs,
                ratio(k2.scenarios as f64, k2.secs),
                k2.errors,
                k2.worst_histogram
            );
        }
        rows.push(row);
    }

    let mut json = String::from("{\n  \"bench\": \"fault_sweep\",\n  \"k\": 1,\n");
    let _ = writeln!(
        json,
        "  \"limit\": {},",
        limit.map_or("null".into(), |l| l.to_string())
    );
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"threads\": {},", confmask_exec::thread_count());
    json.push_str("  \"networks\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let k2 = match &r.k2 {
            Some(k2) => format!(
                "{{\"scenarios\": {}, \"exhaustive\": {}, \"secs\": {:.3}, \
                 \"scenarios_per_sec\": {:.1}, \"errors\": {}, \
                 \"worst_histogram\": [{}, {}, {}, {}, {}]}}",
                k2.scenarios,
                k2.exhaustive,
                k2.secs,
                ratio(k2.scenarios as f64, k2.secs),
                k2.errors,
                k2.worst_histogram[0],
                k2.worst_histogram[1],
                k2.worst_histogram[2],
                k2.worst_histogram[3],
                k2.worst_histogram[4],
            ),
            None => "null".into(),
        };
        let _ = write!(
            json,
            "    {{\"id\": \"{}\", \"name\": \"{}\", \"scenarios\": {}, \
             \"cold_secs\": {:.3}, \"incremental_secs\": {:.3}, \"speedup\": {:.2}, \
             \"parallel_secs\": {:.3}, \"parallel_speedup\": {:.2}, \
             \"batch_bytes\": {}, \"peak_bytes\": {}, \
             \"mismatches\": 0, \"k2\": {}}}",
            r.id,
            r.name,
            r.scenarios,
            r.cold_secs,
            r.incremental_secs,
            r.speedup(),
            r.parallel_secs,
            r.parallel_speedup(),
            r.batch_bytes,
            r.peak_bytes,
            k2
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&output, &json) {
        eprintln!("cannot write {output}: {e}");
        std::process::exit(1);
    }
    println!("wrote {output}");

    if let Some(min) = assert_speedup {
        for r in &rows {
            if r.speedup() < min * (1.0 - RATIO_GATE_TOLERANCE) {
                eprintln!(
                    "net {}: speedup {:.2}x below required {min}x",
                    r.id,
                    r.speedup()
                );
                std::process::exit(1);
            }
        }
        println!("speedup gate: every network >= {min}x");
    }
    if let Some(min) = assert_parallel_speedup {
        for r in &rows {
            if r.parallel_speedup() < min * (1.0 - RATIO_GATE_TOLERANCE) {
                eprintln!(
                    "net {}: parallel speedup {:.2}x below required {min}x",
                    r.id,
                    r.parallel_speedup()
                );
                std::process::exit(1);
            }
        }
        println!("parallel speedup gate: every network >= {min}x");
    }
    if let Some(max) = assert_peak_bytes {
        for r in &rows {
            if r.peak_bytes > max {
                eprintln!(
                    "net {}: streaming peak {} B above budget {max} B",
                    r.id, r.peak_bytes
                );
                std::process::exit(1);
            }
        }
        println!("peak-memory gate: every network <= {max} B");
    }
}
