//! Simulator benchmarks: the Batfish-substitute's control-plane and
//! data-plane throughput, which dominates the pipeline's runtime (§5.4:
//! "the remaining most time-consuming job in our workflow is data plane
//! simulation").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_control_plane(c: &mut Criterion) {
    let suite = confmask_netgen::full_suite();
    let mut group = c.benchmark_group("control_plane");
    group.sample_size(10);
    for net in suite
        .iter()
        .filter(|n| matches!(n.id, 'A' | 'C' | 'D' | 'F' | 'H'))
    {
        group.bench_with_input(
            BenchmarkId::from_parameter(net.id),
            &net.configs,
            |b, cfg| {
                b.iter(|| confmask_sim::simulate_control_plane(cfg).expect("simulate"));
            },
        );
    }
    group.finish();
}

fn bench_full_simulation(c: &mut Criterion) {
    let suite = confmask_netgen::full_suite();
    let mut group = c.benchmark_group("full_simulation");
    group.sample_size(10);
    for net in suite
        .iter()
        .filter(|n| matches!(n.id, 'A' | 'D' | 'G' | 'H'))
    {
        group.bench_with_input(
            BenchmarkId::from_parameter(net.id),
            &net.configs,
            |b, cfg| {
                b.iter(|| confmask_sim::simulate(cfg).expect("simulate"));
            },
        );
    }
    group.finish();
}

fn bench_traceroute(c: &mut Criterion) {
    // Per-pair traceroute, the primitive Strawman 2 spends its time on.
    let net = confmask_netgen::full_suite()
        .into_iter()
        .find(|n| n.id == 'G')
        .expect("fat-tree present")
        .configs;
    let sim = confmask_sim::simulate(&net).expect("simulate");
    let src = sim.net.host_id("h0-0-0").expect("host");
    let dst = sim.net.host_id("h3-1-1").expect("host");
    c.bench_function("traceroute_fattree04_cross_pod", |b| {
        b.iter(|| confmask_sim::dataplane::trace(&sim.net, &sim.fibs, src, dst));
    });
}

criterion_group!(
    benches,
    bench_control_plane,
    bench_full_simulation,
    bench_traceroute
);
criterion_main!(benches);
