//! End-to-end pipeline benchmarks — the measured substance behind
//! Figure 16 (running-time comparison of Strawman 1 / Strawman 2 /
//! ConfMask) and the scalability claim of §7.3 ("ConfMask can anonymize
//! large networks in ~6 minutes, small networks in seconds" — on the
//! native simulator, large networks take seconds).

use confmask::{anonymize, EquivalenceMode, Params};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_modes(c: &mut Criterion) {
    let suite = confmask_netgen::suite::small_suite();
    let mut group = c.benchmark_group("fig16_modes");
    group.sample_size(10);
    for net in &suite {
        for (label, mode) in [
            ("confmask", EquivalenceMode::ConfMask),
            ("strawman1", EquivalenceMode::Strawman1),
            ("strawman2", EquivalenceMode::Strawman2),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, net.id),
                &net.configs,
                |b, configs| {
                    let params = Params::default().with_mode(mode);
                    b.iter(|| anonymize(configs, &params).expect("anonymize"));
                },
            );
        }
    }
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    // Scaling with network size (the Figure 16 x-axis): one ConfMask run
    // per evaluation network, including a large WAN and fat-tree.
    let suite = confmask_netgen::full_suite();
    let mut group = c.benchmark_group("fig16_scaling");
    group.sample_size(10);
    for net in suite
        .iter()
        .filter(|n| matches!(n.id, 'A' | 'D' | 'G' | 'H'))
    {
        group.bench_with_input(
            BenchmarkId::new("confmask", net.id),
            &net.configs,
            |b, configs| {
                b.iter(|| anonymize(configs, &Params::default()).expect("anonymize"));
            },
        );
    }
    group.finish();
}

fn bench_parameters(c: &mut Criterion) {
    // Cost of raising k_R and k_H (Figures 11–14's runtime dimension).
    let net = confmask_netgen::suite::small_suite().remove(0).configs;
    let mut group = c.benchmark_group("parameter_cost");
    group.sample_size(10);
    for (k_r, k_h) in [(2, 2), (6, 2), (10, 2), (6, 4), (6, 6)] {
        group.bench_function(format!("kR{k_r}_kH{k_h}"), |b| {
            let params = Params::new(k_r, k_h);
            b.iter(|| anonymize(&net, &params).expect("anonymize"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_modes, bench_scaling, bench_parameters);
criterion_main!(benches);
