//! Component micro-benchmarks: the building blocks whose costs the design
//! discussion (§5.4) reasons about — graph anonymization, configuration
//! parsing/emission, topology extraction, and the spec miner.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_kdegree(c: &mut Criterion) {
    let mut group = c.benchmark_group("kdegree_anonymization");
    for id in ['D', 'F'] {
        let net = confmask_netgen::full_suite()
            .into_iter()
            .find(|n| n.id == id)
            .expect("suite network")
            .configs;
        let topo = confmask_topology::extract::extract_topology(&net);
        let (rgraph, _) = topo.router_subgraph();
        group.bench_with_input(BenchmarkId::from_parameter(id), &rgraph, |b, g| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(0);
                confmask_topology::kdegree::plan_k_degree(g, 6, &mut rng).expect("plan")
            });
        });
    }
    group.finish();
}

fn bench_config_roundtrip(c: &mut Criterion) {
    let net = confmask_netgen::full_suite()
        .into_iter()
        .find(|n| n.id == 'F')
        .expect("USCarrier")
        .configs;
    let texts: Vec<String> = net.routers.values().map(|r| r.emit()).collect();
    let total_lines: usize = texts.iter().map(|t| t.lines().count()).sum();

    c.bench_function("emit_uscarrier_all_routers", |b| {
        b.iter(|| net.routers.values().map(|r| r.emit().len()).sum::<usize>());
    });
    c.bench_function("parse_uscarrier_all_routers", |b| {
        b.iter(|| {
            texts
                .iter()
                .map(|t| {
                    confmask_config::parse_router(t)
                        .expect("parses")
                        .interfaces
                        .len()
                })
                .sum::<usize>()
        });
    });
    eprintln!("(USCarrier corpus: {total_lines} config lines)");
}

fn bench_topology_extraction(c: &mut Criterion) {
    let net = confmask_netgen::full_suite()
        .into_iter()
        .find(|n| n.id == 'F')
        .expect("USCarrier")
        .configs;
    c.bench_function("extract_topology_uscarrier", |b| {
        b.iter(|| confmask_topology::extract::extract_topology(&net));
    });
}

fn bench_spec_mining(c: &mut Criterion) {
    let net = confmask_netgen::full_suite()
        .into_iter()
        .find(|n| n.id == 'H')
        .expect("FatTree08")
        .configs;
    let sim = confmask_sim::simulate(&net).expect("simulate");
    c.bench_function("mine_specs_fattree08", |b| {
        b.iter(|| confmask_spec::mine(&sim.dataplane).len());
    });
}

criterion_group!(
    benches,
    bench_kdegree,
    bench_config_roundtrip,
    bench_topology_extraction,
    bench_spec_mining
);
criterion_main!(benches);
