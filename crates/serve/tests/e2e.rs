//! End-to-end tests of the daemon over real sockets: submit → poll →
//! artifacts → metrics → graceful shutdown, including concurrent
//! submissions and queue backpressure.

use confmask::Params;
use confmask_serve::client;
use confmask_serve::wire;
use confmask_serve::{Server, ServeOptions};
use std::time::{Duration, Instant};

/// Binds a server on an ephemeral port and runs it on a background
/// thread. Returns the address and the join handle (which yields the
/// final job counts after shutdown).
fn start(workers: usize, queue_cap: usize) -> (String, std::thread::JoinHandle<confmask_serve::store::JobCounts>) {
    let server = Server::bind(&ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_cap,
        ..ServeOptions::default()
    })
    .expect("bind");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("run"));
    (addr, handle)
}

fn submit_bundle(addr: &str, body: &str) -> client::ClientResponse {
    client::post(addr, "/v1/jobs", body).expect("submit")
}

/// Polls a job until it reaches a terminal state.
fn wait_terminal(addr: &str, id: &str) -> wire::JobStatus {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let resp = client::get(addr, &format!("/v1/jobs/{id}")).expect("poll");
        assert_eq!(resp.status, 200, "{}", resp.text());
        let status = wire::decode_status(&resp.body).expect("status json");
        if status.is_terminal() {
            return status;
        }
        assert!(Instant::now() < deadline, "job {id} never finished");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn example_body(seed: u64) -> String {
    let net = confmask_netgen::smallnets::example_network();
    wire::encode_submit(&net, &Params::new(3, 2).with_seed(seed), confmask::Vendor::Ios, confmask::Strategy::ConfMask)
}

#[test]
fn submit_poll_artifacts_metrics_shutdown() {
    let (addr, handle) = start(2, 16);

    // Health before any traffic.
    let health = client::get(&addr, "/healthz").unwrap();
    assert_eq!(health.status, 200);
    assert!(health.text().contains("\"status\": \"ok\""), "{}", health.text());

    // Submit and follow the state machine to `done`.
    let resp = submit_bundle(&addr, &example_body(1));
    assert_eq!(resp.status, 202, "{}", resp.text());
    let id = wire::decode_job_created(&resp.body).unwrap();
    let status = wait_terminal(&addr, &id);
    assert_eq!(status.state, "done", "{status:?}");
    assert_eq!(status.attempts, 1);

    // Artifacts parse back into valid configs.
    let resp = client::get(&addr, &format!("/v1/jobs/{id}/artifacts")).unwrap();
    assert_eq!(resp.status, 200);
    let files = wire::decode_artifacts(&resp.body).unwrap();
    assert!(!files.is_empty());
    for f in &files {
        if f.path.starts_with("routers/") {
            confmask_config::parse_router(&f.text).expect("artifact parses");
        } else {
            assert!(f.path.starts_with("hosts/"), "{}", f.path);
            confmask_config::parse_host(&f.text).expect("artifact parses");
        }
    }

    // Metrics: Prometheus text exposes the serve.* registry, and the JSON
    // report feeds `confmask obs-report -`.
    let metrics = client::get(&addr, "/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let text = metrics.text();
    assert!(text.contains("confmask_serve_jobs_accepted"), "{text}");
    assert!(text.contains("confmask_serve_jobs_done"), "{text}");
    assert!(text.contains("confmask_serve_jobs_rejected"), "{text}");
    assert!(text.contains("confmask_serve_job_wall_ms_count"), "{text}");
    assert!(text.contains("confmask_serve_queue_wait_ms_count"), "{text}");
    assert!(text.contains("confmask_serve_http_submit_ms_count"), "{text}");
    assert!(text.contains("confmask_serve_http_in_flight"), "{text}");
    assert!(text.contains("confmask_obs_dropped_spans"), "{text}");
    let json = client::get(&addr, "/metrics-json").unwrap();
    assert_eq!(json.status, 200);
    let report = confmask_obs::Report::from_json(&json.text()).expect("metrics-json parses");
    assert!(report.counter("serve.jobs_done").unwrap_or(0) >= 1);

    // Unknown job / not-ready artifacts / wrong method.
    assert_eq!(client::get(&addr, "/v1/jobs/j999999").unwrap().status, 404);
    assert_eq!(client::get(&addr, "/nope").unwrap().status, 404);
    assert_eq!(client::post(&addr, "/metrics", "").unwrap().status, 405);
    assert_eq!(submit_bundle(&addr, "not json").status, 400);

    // Graceful shutdown: the run() thread returns with the final counts.
    let resp = client::post(&addr, "/v1/shutdown", "").unwrap();
    assert_eq!(resp.status, 202);
    let counts = handle.join().unwrap();
    assert!(counts.done >= 1);
    assert_eq!(counts.queued + counts.running, 0, "{counts:?}");

    // Post-shutdown submissions are refused (connection fails or 503).
    if let Ok(resp) = client::post(&addr, "/v1/jobs", &example_body(2)) {
        assert_eq!(resp.status, 503);
    }
}

#[test]
fn junos_set_submission_completes_end_to_end() {
    let (addr, handle) = start(1, 8);
    let net = confmask_netgen::smallnets::example_network();
    let params = Params::new(3, 2).with_seed(7);

    // Explicit junos-set submission: the wire body names the dialect.
    let body = wire::encode_submit(&net, &params, confmask::Vendor::JunosSet, confmask::Strategy::ConfMask);
    assert!(body.contains("\"vendor\": \"junos-set\""), "{body}");
    let resp = submit_bundle(&addr, &body);
    assert_eq!(resp.status, 202, "{}", resp.text());
    let id = wire::decode_job_created(&resp.body).unwrap();
    let status = wait_terminal(&addr, &id);
    assert_eq!(status.state, "done", "{status:?}");
    // The dialect is echoed in status and artifacts…
    assert_eq!(status.vendor, Some(confmask::Vendor::JunosSet), "{status:?}");
    let resp = client::get(&addr, &format!("/v1/jobs/{id}/artifacts")).unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.text().contains("\"vendor\": \"junos-set\""), "{}", resp.text());
    // …and the artifact files themselves are junos-set text.
    let files = wire::decode_artifacts(&resp.body).unwrap();
    assert!(!files.is_empty());
    for f in &files {
        if f.path.starts_with("routers/") {
            let rc = confmask_config::parse_router_as(confmask::Vendor::JunosSet, &f.text)
                .expect("artifact parses as junos-set");
            assert_eq!(rc.emit_as(confmask::Vendor::JunosSet), f.text, "{}", f.path);
        }
    }

    // A body with no vendor field sniffs the dialect from the config
    // texts themselves: the job runs, and status echoes the detected
    // dialect as if it had been named explicitly.
    let auto_body: String = body
        .lines()
        .filter(|l| !l.contains("\"vendor\""))
        .collect::<Vec<_>>()
        .join("\n");
    let resp = submit_bundle(&addr, &auto_body);
    assert_eq!(resp.status, 202, "{}", resp.text());
    let auto_id = wire::decode_job_created(&resp.body).unwrap();
    let status = wait_terminal(&addr, &auto_id);
    assert_eq!(status.state, "done", "{status:?}");
    assert_eq!(
        status.vendor,
        Some(confmask::Vendor::JunosSet),
        "auto submission must sniff junos-set: {status:?}"
    );

    client::post(&addr, "/v1/shutdown", "").unwrap();
    let counts = handle.join().unwrap();
    assert_eq!(counts.done, 2, "{counts:?}");
}

#[test]
fn eight_concurrent_submissions_all_finish() {
    let (addr, handle) = start(4, 16);
    let ids: Vec<String> = {
        let submitters: Vec<_> = (0..8)
            .map(|i| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let resp = submit_bundle(&addr, &example_body(100 + i));
                    assert_eq!(resp.status, 202, "{}", resp.text());
                    wire::decode_job_created(&resp.body).unwrap()
                })
            })
            .collect();
        submitters.into_iter().map(|t| t.join().unwrap()).collect()
    };
    assert_eq!(ids.len(), 8);
    for id in &ids {
        let status = wait_terminal(&addr, id);
        assert!(
            status.state == "done" || status.state == "degraded",
            "job {id}: {status:?}"
        );
    }
    client::post(&addr, "/v1/shutdown", "").unwrap();
    let counts = handle.join().unwrap();
    assert_eq!(counts.done + counts.degraded, 8, "no job may be lost: {counts:?}");
}

#[test]
fn full_queue_rejects_with_429_and_retry_after() {
    // One worker, tiny queue, and 12 *simultaneous* submissions: even if
    // the worker drains a job or two mid-flood, the burst lands within
    // milliseconds and must overflow the cap-2 queue. (A sequential
    // submit loop here is flaky — a fast worker can drain between
    // round-trips and never leave the queue full.)
    let (addr, handle) = start(1, 2);
    let responses: Vec<client::ClientResponse> = (0..12)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || submit_bundle(&addr, &example_body(200 + i)))
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|t| t.join().unwrap())
        .collect();
    let mut accepted = Vec::new();
    let mut rejected = 0;
    for resp in responses {
        match resp.status {
            202 => accepted.push(wire::decode_job_created(&resp.body).unwrap()),
            429 => {
                rejected += 1;
                assert!(resp.text().contains("queue full"), "{}", resp.text());
            }
            other => panic!("unexpected status {other}: {}", resp.text()),
        }
    }
    assert!(rejected > 0, "12 simultaneous submissions into cap 2 must overflow");
    // Every accepted job still completes (drain-on-shutdown, none lost).
    let resp = client::post(&addr, "/v1/shutdown", "").unwrap();
    assert_eq!(resp.status, 202);
    let counts = handle.join().unwrap();
    assert_eq!(
        counts.done + counts.degraded,
        accepted.len(),
        "{counts:?}"
    );
    assert_eq!(counts.queued + counts.running, 0);
}

#[test]
fn failed_jobs_surface_the_pipeline_error() {
    let (addr, handle) = start(1, 4);
    // Griffin's bad gadget has no BGP equilibrium: the job must fail, and
    // the status must carry the error.
    let net = confmask_netgen::smallnets::bad_gadget();
    let body = wire::encode_submit(&net, &Params::new(3, 2), confmask::Vendor::Ios, confmask::Strategy::ConfMask);
    let resp = submit_bundle(&addr, &body);
    assert_eq!(resp.status, 202);
    let id = wire::decode_job_created(&resp.body).unwrap();
    let status = wait_terminal(&addr, &id);
    assert_eq!(status.state, "failed");
    assert!(status.error.is_some(), "{status:?}");
    // Artifacts of a failed job are a 409 conflict.
    let resp = client::get(&addr, &format!("/v1/jobs/{id}/artifacts")).unwrap();
    assert_eq!(resp.status, 409);
    client::post(&addr, "/v1/shutdown", "").unwrap();
    let counts = handle.join().unwrap();
    assert_eq!(counts.failed, 1);
}
