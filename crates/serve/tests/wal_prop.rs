//! Property tests for the WAL byte format: whatever happens to the tail
//! of a log — truncation at any offset, a flipped bit anywhere — scanning
//! never panics and always recovers the longest valid prefix, and a clean
//! log round-trips byte-exactly.

use confmask_serve::wal::{encode_record, scan_body, Kind, RECORD_OVERHEAD};
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = Kind> {
    prop_oneof![
        Just(Kind::Created),
        Just(Kind::Running),
        Just(Kind::Finished),
        Just(Kind::Artifacts),
        Just(Kind::Removed),
        Just(Kind::Requeued),
        Just(Kind::Snapshot),
    ]
}

fn arb_records() -> impl Strategy<Value = Vec<(Kind, Vec<u8>)>> {
    prop::collection::vec(
        (arb_kind(), prop::collection::vec(any::<u8>(), 0..64)),
        0..8,
    )
}

fn encode(records: &[(Kind, Vec<u8>)]) -> Vec<u8> {
    records
        .iter()
        .flat_map(|(kind, payload)| encode_record(*kind, payload))
        .collect()
}

/// How many whole records fit in the first `limit` bytes, and where the
/// last one ends.
fn whole_records_within(records: &[(Kind, Vec<u8>)], limit: usize) -> (usize, usize) {
    let (mut count, mut pos) = (0usize, 0usize);
    for (_, payload) in records {
        let next = pos + RECORD_OVERHEAD + payload.len();
        if next > limit {
            break;
        }
        count += 1;
        pos = next;
    }
    (count, pos)
}

proptest! {
    #[test]
    fn clean_logs_round_trip_byte_exactly(records in arb_records()) {
        let bytes = encode(&records);
        let scan = scan_body(&bytes);
        prop_assert_eq!(scan.records.len(), records.len());
        prop_assert_eq!(scan.valid_len, bytes.len());
        prop_assert_eq!(scan.discarded, 0);
        for (record, (kind, payload)) in scan.records.iter().zip(&records) {
            prop_assert_eq!(record.kind, *kind);
            prop_assert_eq!(&record.payload, payload);
        }
        let reencoded: Vec<u8> = scan
            .records
            .iter()
            .flat_map(|r| encode_record(r.kind, &r.payload))
            .collect();
        prop_assert_eq!(reencoded, bytes);
    }

    #[test]
    fn truncation_anywhere_recovers_the_longest_valid_prefix(
        records in arb_records(),
        cut_seed in any::<u64>(),
    ) {
        let bytes = encode(&records);
        let cut = (cut_seed as usize) % (bytes.len() + 1);
        let scan = scan_body(&bytes[..cut]); // must not panic
        let (count, pos) = whole_records_within(&records, cut);
        prop_assert_eq!(scan.records.len(), count);
        prop_assert_eq!(scan.valid_len, pos);
        prop_assert_eq!(scan.discarded, cut - pos);
        for (record, (kind, payload)) in scan.records.iter().zip(&records) {
            prop_assert_eq!(record.kind, *kind);
            prop_assert_eq!(&record.payload, payload);
        }
    }

    #[test]
    fn a_flipped_bit_never_panics_and_never_corrupts_earlier_records(
        records in arb_records(),
        bit in any::<u64>(),
    ) {
        let bytes = encode(&records);
        prop_assume!(!bytes.is_empty());
        let byte_at = (bit as usize / 8) % bytes.len();
        let mut corrupt = bytes.clone();
        corrupt[byte_at] ^= 1u8 << (bit % 8);
        let scan = scan_body(&corrupt); // must not panic
        prop_assert_eq!(scan.valid_len + scan.discarded, corrupt.len());
        // Every record that ends strictly before the flipped byte is
        // untouched and must survive verbatim.
        let (intact, _) = whole_records_within(&records, byte_at);
        prop_assert!(scan.records.len() >= intact);
        for (record, (kind, payload)) in scan.records.iter().zip(&records).take(intact) {
            prop_assert_eq!(record.kind, *kind);
            prop_assert_eq!(&record.payload, payload);
        }
    }
}
