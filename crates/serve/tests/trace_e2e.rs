//! End-to-end tests of request-scoped tracing: every response carries an
//! `X-Request-Id`, and `GET /v1/jobs/{id}/trace` serves a single-rooted
//! span tree stitching the HTTP accept, the queue hop, the worker, the
//! pipeline stages, and persistence under one trace id.

use confmask::Params;
use confmask_obs::json::{parse, Json};
use confmask_serve::client;
use confmask_serve::wire;
use confmask_serve::{Server, ServeOptions};
use std::time::{Duration, Instant};

fn start(
    opts: ServeOptions,
) -> (String, std::thread::JoinHandle<confmask_serve::store::JobCounts>) {
    let server = Server::bind(&opts).expect("bind");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("run"));
    (addr, handle)
}

fn example_body(seed: u64) -> String {
    let net = confmask_netgen::smallnets::example_network();
    wire::encode_submit(&net, &Params::new(3, 2).with_seed(seed), confmask::Vendor::Ios, confmask::Strategy::ConfMask)
}

fn wait_terminal(addr: &str, id: &str) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let resp = client::get(addr, &format!("/v1/jobs/{id}")).expect("poll");
        assert_eq!(resp.status, 200, "{}", resp.text());
        if wire::decode_status(&resp.body).expect("status").is_terminal() {
            return;
        }
        assert!(Instant::now() < deadline, "job {id} never finished");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Collects `(name, trace)` of every span in a trace-endpoint response
/// tree, depth-first.
fn collect_spans(node: &Json, out: &mut Vec<(String, u64)>) {
    let name = node.get("name").and_then(Json::as_str).expect("span name");
    let trace = node.get("trace").and_then(Json::as_u64).unwrap_or(0);
    out.push((name.to_string(), trace));
    for child in node.get("children").and_then(Json::as_arr).unwrap_or(&[]) {
        collect_spans(child, out);
    }
}

/// Fetches the job's trace, polling until the expected late spans appear:
/// a worker finishes its `serve.worker` span shortly *after* the job
/// turns terminal, so the first fetch after completion may be partial.
fn fetch_settled_trace(addr: &str, id: &str) -> Json {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let resp = client::get(addr, &format!("/v1/jobs/{id}/trace")).expect("trace");
        assert_eq!(resp.status, 200, "{}", resp.text());
        let doc = parse(&resp.text()).expect("trace json");
        let mut spans = Vec::new();
        for root in doc.get("spans").and_then(Json::as_arr).unwrap_or(&[]) {
            collect_spans(root, &mut spans);
        }
        if spans.iter().any(|(n, _)| n == "serve.worker") {
            return doc;
        }
        assert!(Instant::now() < deadline, "trace for {id} never settled");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn a_completed_job_serves_a_single_rooted_trace_tree() {
    // A durable daemon, so the trace also shows the WAL persistence hop.
    let dir = std::env::temp_dir().join(format!(
        "confmask-trace-e2e-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let (addr, handle) = start(ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_cap: 16,
        state_dir: Some(dir.clone()),
        ..ServeOptions::default()
    });

    // Every response echoes the minted trace id as X-Request-Id.
    let health = client::get(&addr, "/healthz").unwrap();
    let health_rid = health.header("x-request-id").expect("request id").to_string();
    assert_eq!(health_rid.len(), 16, "{health_rid}");

    let resp = client::post(&addr, "/v1/jobs", &example_body(1)).unwrap();
    assert_eq!(resp.status, 202, "{}", resp.text());
    let submit_rid = resp.header("x-request-id").expect("request id").to_string();
    assert_ne!(submit_rid, health_rid, "each request gets its own trace");
    let id = wire::decode_job_created(&resp.body).unwrap();
    wait_terminal(&addr, &id);

    let doc = fetch_settled_trace(&addr, &id);
    assert_eq!(doc.get("id").and_then(Json::as_str), Some(id.as_str()));
    // The trace served for the job is the submit request's trace.
    assert_eq!(
        doc.get("request_id").and_then(Json::as_str),
        Some(submit_rid.as_str())
    );

    // Single-rooted at the HTTP accept span.
    let roots = doc.get("spans").and_then(Json::as_arr).expect("spans");
    assert_eq!(roots.len(), 1, "trace must be single-rooted");
    assert_eq!(
        roots[0].get("name").and_then(Json::as_str),
        Some("serve.request")
    );

    let mut spans = Vec::new();
    collect_spans(&roots[0], &mut spans);
    // One trace id across every span in the tree.
    let traces: std::collections::BTreeSet<u64> =
        spans.iter().map(|(_, t)| *t).collect();
    assert_eq!(traces.len(), 1, "{spans:?}");
    assert_eq!(
        format!("{:016x}", traces.first().unwrap()),
        submit_rid,
        "span trace ids match the request id"
    );
    // The whole lifecycle is present: accept, queue hop, worker, pipeline
    // (down to its stages), and persistence (including the WAL append).
    for expected in [
        "serve.queue_wait",
        "serve.worker",
        "serve.run",
        "pipeline.anonymize",
        "pipeline.attempt",
        "serve.persist",
        "serve.wal.finish",
    ] {
        assert!(
            spans.iter().any(|(n, _)| n == expected),
            "missing span {expected} in {spans:?}"
        );
    }
    assert!(
        spans.iter().any(|(n, _)| n.starts_with("pipeline.stage.")),
        "missing pipeline stage spans in {spans:?}"
    );

    // Traces of nonexistent jobs are 404.
    assert_eq!(client::get(&addr, "/v1/jobs/j999999/trace").unwrap().status, 404);

    client::post(&addr, "/v1/shutdown", "").unwrap();
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_jobs_never_interleave_their_trace_trees() {
    let (addr, handle) = start(ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        workers: 8,
        queue_cap: 16,
        ..ServeOptions::default()
    });
    // 8 simultaneous submissions running on 8 workers: their pipelines
    // overlap in time, but every job's trace must contain exactly its own
    // lifecycle, uncontaminated by its neighbors'.
    let ids: Vec<String> = (0..8u64)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let resp =
                    client::post(&addr, "/v1/jobs", &example_body(300 + i)).unwrap();
                assert_eq!(resp.status, 202, "{}", resp.text());
                wire::decode_job_created(&resp.body).unwrap()
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|t| t.join().unwrap())
        .collect();
    for id in &ids {
        wait_terminal(&addr, id);
    }
    let mut seen_request_ids = std::collections::BTreeSet::new();
    for id in &ids {
        let doc = fetch_settled_trace(&addr, id);
        let rid = doc
            .get("request_id")
            .and_then(Json::as_str)
            .expect("request id")
            .to_string();
        assert!(seen_request_ids.insert(rid), "jobs must not share a trace");
        let roots = doc.get("spans").and_then(Json::as_arr).expect("spans");
        assert_eq!(roots.len(), 1, "job {id}: trace must be single-rooted");
        let mut spans = Vec::new();
        collect_spans(&roots[0], &mut spans);
        // Exactly one of each lifecycle span — a second worker or pipeline
        // span would mean another job's spans leaked into this trace.
        for unique in ["serve.request", "serve.queue_wait", "serve.worker", "serve.run", "pipeline.anonymize"] {
            assert_eq!(
                spans.iter().filter(|(n, _)| n == unique).count(),
                1,
                "job {id}: expected exactly one {unique} in {spans:?}"
            );
        }
        let traces: std::collections::BTreeSet<u64> =
            spans.iter().map(|(_, t)| *t).collect();
        assert_eq!(traces.len(), 1, "job {id}: one trace id per tree");
    }
    client::post(&addr, "/v1/shutdown", "").unwrap();
    handle.join().unwrap();
}
