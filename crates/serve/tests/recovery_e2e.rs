//! End-to-end crash recovery over real sockets: a daemon with a
//! `--state-dir` restarts and keeps serving finished jobs, re-executes a
//! job a crash interrupted, and reports the recovery in its metrics.

use confmask::Params;
use confmask_serve::client;
use confmask_serve::persist::Persistence;
use confmask_serve::wire;
use confmask_serve::{Server, ServeOptions};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "confmask-recovery-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(state_dir: &Path) -> (String, std::thread::JoinHandle<confmask_serve::store::JobCounts>) {
    let server = Server::bind(&ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_cap: 16,
        state_dir: Some(state_dir.to_path_buf()),
        ..ServeOptions::default()
    })
    .expect("bind");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("run"));
    (addr, handle)
}

fn wait_terminal(addr: &str, id: &str) -> wire::JobStatus {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let resp = client::get(addr, &format!("/v1/jobs/{id}")).expect("poll");
        assert_eq!(resp.status, 200, "{}", resp.text());
        let status = wire::decode_status(&resp.body).expect("status json");
        if status.is_terminal() {
            return status;
        }
        assert!(Instant::now() < deadline, "job {id} never finished");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn recovered_jobs_metric(addr: &str) -> u64 {
    let resp = client::get(addr, "/metrics").unwrap();
    assert_eq!(resp.status, 200);
    resp.text()
        .lines()
        .find(|l| l.starts_with("confmask_serve_recovered_jobs "))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .expect("confmask_serve_recovered_jobs exposed")
}

#[test]
fn finished_jobs_survive_a_graceful_restart() {
    let dir = tmp("graceful");
    let net = confmask_netgen::smallnets::example_network();
    let body = wire::encode_submit(&net, &Params::new(3, 2), confmask::Vendor::Ios, confmask::Strategy::ConfMask);

    // Daemon 1: run one job to completion, remember its artifacts.
    let (addr, handle) = start(&dir);
    let resp = client::post(&addr, "/v1/jobs", &body).unwrap();
    assert_eq!(resp.status, 202, "{}", resp.text());
    let id = wire::decode_job_created(&resp.body).unwrap();
    let status = wait_terminal(&addr, &id);
    assert!(status.state == "done" || status.state == "degraded", "{status:?}");
    let artifacts_1 = client::get(&addr, &format!("/v1/jobs/{id}/artifacts")).unwrap();
    assert_eq!(artifacts_1.status, 200);
    client::post(&addr, "/v1/shutdown", "").unwrap();
    handle.join().unwrap();

    // Daemon 2, same state dir: the job is still there, byte-identical.
    let (addr, handle) = start(&dir);
    assert!(recovered_jobs_metric(&addr) >= 1, "recovery must be visible in metrics");
    let resp = client::get(&addr, &format!("/v1/jobs/{id}")).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    let status = wire::decode_status(&resp.body).expect("status json");
    assert!(status.state == "done" || status.state == "degraded", "{status:?}");
    let artifacts_2 = client::get(&addr, &format!("/v1/jobs/{id}/artifacts")).unwrap();
    assert_eq!(artifacts_2.status, 200);
    let files_1 = wire::decode_artifacts(&artifacts_1.body).unwrap();
    let files_2 = wire::decode_artifacts(&artifacts_2.body).unwrap();
    assert_eq!(files_1, files_2, "artifacts must survive the restart byte-identical");

    // The id allocator resumed past the recovered job: a new submission
    // never reuses an id.
    let resp = client::post(&addr, "/v1/jobs", &body).unwrap();
    assert_eq!(resp.status, 202);
    let new_id = wire::decode_job_created(&resp.body).unwrap();
    assert_ne!(new_id, id);
    wait_terminal(&addr, &new_id);

    client::post(&addr, "/v1/shutdown", "").unwrap();
    let counts = handle.join().unwrap();
    assert_eq!(counts.done + counts.degraded, 2, "{counts:?}");
}

#[test]
fn pre_strategy_jobs_recover_with_null_strategy() {
    let dir = tmp("pre-strategy");
    let net = confmask_netgen::smallnets::example_network();
    let params = Params::new(3, 2);
    // A submission journaled before strategy support existed: the
    // canonical body with its "strategy" line stripped.
    let canonical =
        wire::encode_submit(&net, &params, confmask::Vendor::Ios, confmask::Strategy::ConfMask);
    let pre_strategy: String = canonical
        .lines()
        .filter(|l| !l.contains("\"strategy\""))
        .map(|l| format!("{l}\n"))
        .collect();
    assert!(wire::submission_strategy(&pre_strategy).is_none());
    let key = confmask::content_key(&net, &params);
    {
        let (p, recovery) = Persistence::open(&dir, 256, 3).expect("seed state dir");
        assert!(recovery.jobs.is_empty());
        p.log_created(1, key, &pre_strategy).expect("journal Created");
        p.log_running(1, 1);
    }

    // Boot 1: the interrupted pre-strategy job re-runs (as confmask, the
    // wire default), but its *reported* strategy is unknown — the old
    // submission never named one — and must be echoed as null, never
    // defaulted to "confmask".
    let (addr, handle) = start(&dir);
    let status = wait_terminal(&addr, "j1");
    assert!(status.state == "done" || status.state == "degraded", "{status:?}");
    assert_eq!(status.strategy, None, "{status:?}");
    let resp = client::get(&addr, "/v1/jobs/j1/artifacts").unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.text().contains("\"strategy\": null"), "{}", resp.text());
    client::post(&addr, "/v1/shutdown", "").unwrap();
    handle.join().unwrap();

    // Boot 2: now it is a terminal recovered job (submission dropped at
    // completion, mirroring the vendor-recovery rule): still null.
    let (addr, handle) = start(&dir);
    let resp = client::get(&addr, "/v1/jobs/j1").unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    let status = wire::decode_status(&resp.body).unwrap();
    assert!(status.is_terminal(), "{status:?}");
    assert_eq!(status.strategy, None, "{status:?}");

    // A fresh submission naming a strategy is echoed concretely.
    let body =
        wire::encode_submit(&net, &params, confmask::Vendor::Ios, confmask::Strategy::NetCloak);
    let resp = client::post(&addr, "/v1/jobs", &body).unwrap();
    assert_eq!(resp.status, 202, "{}", resp.text());
    let id = wire::decode_job_created(&resp.body).unwrap();
    let status = wait_terminal(&addr, &id);
    assert_eq!(status.strategy, Some(confmask::Strategy::NetCloak), "{status:?}");

    client::post(&addr, "/v1/shutdown", "").unwrap();
    handle.join().unwrap();
}

#[test]
fn a_job_interrupted_by_a_crash_is_requeued_and_completes() {
    let dir = tmp("interrupted");
    let net = confmask_netgen::smallnets::example_network();
    let params = Params::new(3, 2);
    let body = wire::encode_submit(&net, &params, confmask::Vendor::Ios, confmask::Strategy::ConfMask);
    let key = confmask::content_key(&net, &params);

    // Hand-author the state directory a crashed daemon would leave: a job
    // accepted and picked up by a worker, but never finished.
    {
        let (p, recovery) = Persistence::open(&dir, 256, 3).expect("seed state dir");
        assert!(recovery.jobs.is_empty());
        p.log_created(1, key, &body).expect("journal Created");
        p.log_running(1, 1);
    }

    // The daemon boots on that directory: recovery classifies the job as
    // interrupted, requeues it with backoff, and a worker re-runs it.
    let (addr, handle) = start(&dir);
    assert!(recovered_jobs_metric(&addr) >= 1);
    let status = wait_terminal(&addr, "j1");
    assert!(
        status.state == "done" || status.state == "degraded",
        "an interrupted job must be re-run to completion: {status:?}"
    );
    assert_eq!(status.requeues, 1, "{status:?}");

    // The re-run's artifacts parse as valid configs.
    let resp = client::get(&addr, "/v1/jobs/j1/artifacts").unwrap();
    assert_eq!(resp.status, 200);
    let files = wire::decode_artifacts(&resp.body).unwrap();
    assert!(!files.is_empty());
    for f in &files {
        if f.path.starts_with("routers/") {
            confmask_config::parse_router(&f.text).expect("artifact parses");
        } else {
            confmask_config::parse_host(&f.text).expect("artifact parses");
        }
    }

    client::post(&addr, "/v1/shutdown", "").unwrap();
    let counts = handle.join().unwrap();
    assert_eq!(counts.done + counts.degraded, 1, "{counts:?}");
}
