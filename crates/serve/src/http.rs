//! Minimal HTTP/1.1 on `std::net`: request parsing and response writing.
//!
//! Only what the JSON API needs — request line, headers, `Content-Length`
//! bodies, `Connection: close` responses. Bodies are capped so a
//! misbehaving client cannot exhaust memory; parse failures map to 400.

use std::io::{self, BufRead, Write};

/// Upper bound on an accepted request body (a config bundle for a large
/// network is a few MB; 64 MiB leaves ample headroom).
pub const MAX_BODY: usize = 64 << 20;
/// Upper bound on a single header line.
const MAX_HEADER_LINE: usize = 16 << 10;
/// Upper bound on the number of header lines.
const MAX_HEADERS: usize = 128;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Request path (query strings are not used by this API and are kept
    /// attached verbatim).
    pub path: String,
    /// Headers with lowercased names, in order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header named `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A request-parse failure with the HTTP status it should map to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// Response status (400 for malformed input, 413 for oversized).
    pub status: u16,
    /// Human-readable cause, echoed in the error body.
    pub message: String,
}

impl HttpError {
    fn bad(message: impl Into<String>) -> HttpError {
        HttpError {
            status: 400,
            message: message.into(),
        }
    }
}

/// Reads one CRLF- (or bare-LF-) terminated line, rejecting overlong ones.
fn read_line(reader: &mut impl BufRead) -> io::Result<Result<String, HttpError>> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte)? {
            0 => break,
            _ => {
                if byte[0] == b'\n' {
                    break;
                }
                line.push(byte[0]);
                if line.len() > MAX_HEADER_LINE {
                    return Ok(Err(HttpError::bad("header line too long")));
                }
            }
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    Ok(match String::from_utf8(line) {
        Ok(s) => Ok(s),
        Err(_) => Err(HttpError::bad("header line is not UTF-8")),
    })
}

/// Reads and parses one request from `reader`. Returns:
/// * `Ok(None)` — the peer closed the connection before sending anything;
/// * `Ok(Some(Err(_)))` — a malformed request (send the error response);
/// * `Ok(Some(Ok(req)))` — a complete request.
pub fn read_request(
    reader: &mut impl BufRead,
) -> io::Result<Option<Result<Request, HttpError>>> {
    let request_line = match read_line(reader)? {
        Ok(line) => line,
        Err(e) => return Ok(Some(Err(e))),
    };
    if request_line.is_empty() {
        return Ok(None);
    }
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m.to_ascii_uppercase(), p.to_string(), v),
        _ => return Ok(Some(Err(HttpError::bad("malformed request line")))),
    };
    if !version.starts_with("HTTP/1.") {
        return Ok(Some(Err(HttpError::bad("unsupported HTTP version"))));
    }

    let mut headers = Vec::new();
    loop {
        let line = match read_line(reader)? {
            Ok(line) => line,
            Err(e) => return Ok(Some(Err(e))),
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Ok(Some(Err(HttpError::bad("too many headers"))));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Ok(Some(Err(HttpError::bad("malformed header"))));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut body = Vec::new();
    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| v.parse::<usize>());
    match content_length {
        None => {}
        Some(Err(_)) => return Ok(Some(Err(HttpError::bad("bad content-length")))),
        Some(Ok(n)) if n > MAX_BODY => {
            return Ok(Some(Err(HttpError {
                status: 413,
                message: format!("body of {n} bytes exceeds the {MAX_BODY}-byte cap"),
            })))
        }
        Some(Ok(n)) => {
            body.resize(n, 0);
            reader.read_exact(&mut body)?;
        }
    }

    Ok(Some(Ok(Request {
        method,
        path,
        headers,
        body,
    })))
}

/// An HTTP response to serialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// Extra headers (e.g. `Retry-After`).
    pub extra_headers: Vec<(&'static str, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            extra_headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A JSON error response with a `{"error": …}` body.
    pub fn error(status: u16, message: &str) -> Response {
        Response::json(
            status,
            format!("{{\"error\": {}}}\n", confmask_obs::json::escape(message)),
        )
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.extra_headers.push((name, value.into()));
        self
    }

    /// The standard reason phrase for the status codes this API uses.
    pub fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            503 => "Service Unavailable",
            _ => "Internal Server Error",
        }
    }

    /// Serializes the response (always `Connection: close`).
    pub fn write_to(&self, writer: &mut impl Write) -> io::Result<()> {
        write!(
            writer,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            Response::reason(self.status),
            self.content_type,
            self.body.len()
        )?;
        for (name, value) in &self.extra_headers {
            write!(writer, "{name}: {value}\r\n")?;
        }
        writer.write_all(b"\r\n")?;
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Option<Result<Request, HttpError>> {
        read_request(&mut BufReader::new(raw.as_bytes())).unwrap()
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse("POST /v1/jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/jobs");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn parses_a_get_without_body_and_bare_lf() {
        let req = parse("GET /healthz HTTP/1.1\nHost: x\n\n").unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn empty_connection_is_none() {
        assert_eq!(parse(""), None);
    }

    #[test]
    fn malformed_requests_are_bad_request() {
        for raw in [
            "GARBAGE\r\n\r\n",
            "GET /x SPDY/3\r\n\r\n",
            "GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            "GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
        ] {
            let err = parse(raw).unwrap().unwrap_err();
            assert_eq!(err.status, 400, "{raw:?}");
        }
    }

    #[test]
    fn oversized_body_is_413() {
        let raw = format!("POST /v1/jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        assert_eq!(parse(&raw).unwrap().unwrap_err().status, 413);
    }

    #[test]
    fn response_serializes_with_headers() {
        let mut out = Vec::new();
        Response::json(429, "{}")
            .with_header("Retry-After", "1")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
