//! Durability for the job store: WAL journaling, periodic snapshots, and
//! the crash-recovery state machine.
//!
//! ## Files under `--state-dir`
//!
//! | file | contents |
//! |---|---|
//! | `wal.log` | append-only journal of every job transition (see [`crate::wal`]) |
//! | `snapshot.bin` | one [`Kind::Snapshot`] record holding the whole store |
//! | `snapshot.tmp` | in-flight snapshot (renamed into place atomically) |
//!
//! ## Record payloads (JSON)
//!
//! * `Created`   — `{"id", "key", "submission"}`: the canonical submission
//!   body plus its [`confmask::content_key`], written **before** the
//!   client's 202 (a job is accepted only once it is durable).
//! * `Running`   — `{"id", "attempt"}`: a worker picked the job up.
//! * `Finished`  — `{"id", "state", "error", "wall_ms", "summary"}`.
//! * `Artifacts` — `{"id", "checksum", "files"}`: written before
//!   `Finished`, so a durable `Finished` implies a durable bundle.
//! * `Removed`   — `{"id"}`: the queue refused the job after creation.
//! * `Requeued`  — `{"id", "requeues"}`: recovery re-admitted the job.
//!
//! ## Recovery state machine
//!
//! Replay folds snapshot + WAL into per-job states, *advance-only* (a
//! record never regresses a terminal job — re-applying the WAL after a
//! crash between snapshot-rename and WAL-truncate is idempotent):
//!
//! ```text
//! Created ──> queued ──Running──> running ──Finished──> done|degraded|failed
//!    ^                     │
//!    └──Requeued(+backoff)─┘   (running at crash = "interrupted")
//! ```
//!
//! A job that was `running` when the process died is classified
//! **interrupted**: if its attempt count is below the requeue budget it
//! is journaled `Requeued` and handed back with an attempt-count-aware
//! jittered backoff delay; otherwise it is journaled `Finished(failed)`.
//! A job that was `queued` is requeued as-is (waiting in a queue cannot
//! crash a daemon, so it costs no budget). Artifact bundles carry their
//! own FNV checksum over the sorted file list; a bundle that fails it is
//! dropped (the job's artifacts are *absent*, never partially served).

use crate::failpoint::{self, Action};
use crate::store::{JobRecord, JobState};
use crate::wal::{self, fnv1a, Kind, WalWriter, FNV_OFFSET};
use crate::wire;
use confmask::{ArtifactFile, DegradationReport, JobOutcome, JobSummary};
use confmask_obs::json::{escape, parse, Json};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;

/// Snapshot after this many WAL appends (compaction cadence).
pub const DEFAULT_SNAPSHOT_EVERY: u64 = 256;

/// Default `--requeue-budget`: an interrupted job is re-admitted at most
/// this many times before recovery fails it.
pub const DEFAULT_REQUEUE_BUDGET: u32 = 3;

/// Jittered exponential backoff for requeued jobs: 100 ms doubling per
/// prior interruption, capped at 5 s, with a deterministic ±50% jitter
/// derived from the job id (so a thundering herd of interrupted jobs
/// spreads out, and tests can predict every delay).
pub fn backoff_delay(requeues: u32, id: u64) -> Duration {
    if requeues == 0 {
        return Duration::ZERO;
    }
    let base_ms = 100u64 << (u64::from(requeues) - 1).min(6);
    let base_ms = base_ms.min(5_000);
    // SplitMix64 on (id, requeues) for the jitter.
    let mut x = id ^ (u64::from(requeues) << 32) ^ 0x9E37_79B9_7F4A_7C15;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    let jitter = x % (base_ms / 2).max(1);
    Duration::from_millis(base_ms / 2 + jitter)
}

/// FNV checksum of an artifact bundle: sorted by path, then every path
/// and text folded in. Sorting makes the checksum independent of the
/// emit order, which JSON-object round-trips do not preserve.
pub fn bundle_checksum(files: &[ArtifactFile]) -> u64 {
    let mut sorted: Vec<&ArtifactFile> = files.iter().collect();
    sorted.sort_by(|a, b| a.path.cmp(&b.path));
    let mut state = FNV_OFFSET;
    for f in sorted {
        state = fnv1a(f.path.as_bytes(), state);
        state = fnv1a(&[0], state);
        state = fnv1a(f.text.as_bytes(), state);
        state = fnv1a(&[0], state);
    }
    state
}

// ---------------------------------------------------------------------------
// Payload encoding
// ---------------------------------------------------------------------------

fn null_or<T: std::fmt::Display>(v: &Option<T>) -> String {
    v.as_ref().map(|v| v.to_string()).unwrap_or_else(|| "null".into())
}

fn payload_created(id: u64, key: u64, submission: &str) -> String {
    format!(
        "{{\"id\": {id}, \"key\": \"{key:#018x}\", \"submission\": {}}}",
        escape(submission)
    )
}

fn payload_running(id: u64, attempt: u32) -> String {
    format!("{{\"id\": {id}, \"attempt\": {attempt}}}")
}

fn payload_finished(
    id: u64,
    state: JobState,
    error: Option<&str>,
    wall_ms: Option<u64>,
    summary: Option<&JobSummary>,
) -> String {
    format!(
        "{{\"id\": {id}, \"state\": {}, \"error\": {}, \"wall_ms\": {}, \"summary\": {}}}",
        escape(state.name()),
        error.map(escape).unwrap_or_else(|| "null".into()),
        null_or(&wall_ms),
        summary.map(wire::encode_summary).unwrap_or_else(|| "null".into()),
    )
}

fn payload_artifacts(id: u64, files: &[ArtifactFile]) -> String {
    let mut out = format!(
        "{{\"id\": {id}, \"checksum\": \"{:#018x}\", \"files\": {{",
        bundle_checksum(files)
    );
    for (i, f) in files.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}: {}", escape(&f.path), escape(&f.text));
    }
    out.push_str("}}");
    out
}

fn payload_id_only(id: u64) -> String {
    format!("{{\"id\": {id}}}")
}

fn payload_requeued(id: u64, requeues: u32) -> String {
    format!("{{\"id\": {id}, \"requeues\": {requeues}}}")
}

// ---------------------------------------------------------------------------
// Payload decoding
// ---------------------------------------------------------------------------

fn get_u64(doc: &Json, key: &str) -> Option<u64> {
    doc.get(key)?.as_u64()
}

fn get_str<'a>(doc: &'a Json, key: &'a str) -> Option<&'a str> {
    doc.get(key)?.as_str()
}

fn parse_hex_key(s: &str) -> Option<u64> {
    u64::from_str_radix(s.strip_prefix("0x")?, 16).ok()
}

fn decode_files(doc: &Json) -> Option<Vec<ArtifactFile>> {
    let files = doc.get("files")?.as_obj()?;
    Some(
        files
            .iter()
            .filter_map(|(path, text)| {
                Some(ArtifactFile {
                    path: path.clone(),
                    text: text.as_str()?.to_string(),
                })
            })
            .collect(),
    )
}

fn state_from_name(name: &str) -> Option<JobState> {
    Some(match name {
        "queued" => JobState::Queued,
        "running" => JobState::Running,
        "interrupted" => JobState::Interrupted,
        "done" => JobState::Done,
        "degraded" => JobState::Degraded,
        "failed" => JobState::Failed,
        _ => return None,
    })
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

/// Per-job state folded out of snapshot + WAL.
#[derive(Debug, Clone, Default)]
struct ReplayJob {
    state: Option<JobState>,
    error: Option<String>,
    wall_ms: Option<u64>,
    requeues: u32,
    key: u64,
    submission: Option<String>,
    summary: Option<JobSummary>,
    files: Option<Vec<ArtifactFile>>,
}

impl ReplayJob {
    fn terminal(&self) -> bool {
        self.state.is_some_and(JobState::is_terminal)
    }
}

#[derive(Debug, Default)]
struct Replay {
    jobs: BTreeMap<u64, ReplayJob>,
    max_id: u64,
    skipped: u64,
}

impl Replay {
    /// Applies one WAL record. Advance-only: terminal jobs never move.
    fn apply(&mut self, record: &wal::Record) {
        let Ok(text) = std::str::from_utf8(&record.payload) else {
            self.skipped += 1;
            return;
        };
        let Ok(doc) = parse(text) else {
            self.skipped += 1;
            return;
        };
        let Some(id) = get_u64(&doc, "id") else {
            self.skipped += 1;
            return;
        };
        self.max_id = self.max_id.max(id);
        match record.kind {
            Kind::Created => {
                let job = self.jobs.entry(id).or_default();
                if job.state.is_none() {
                    job.state = Some(JobState::Queued);
                    job.key = get_str(&doc, "key").and_then(parse_hex_key).unwrap_or(0);
                    job.submission = get_str(&doc, "submission").map(str::to_string);
                }
            }
            Kind::Running => {
                let Some(job) = self.jobs.get_mut(&id) else {
                    self.skipped += 1;
                    return;
                };
                if !job.terminal() {
                    job.state = Some(JobState::Running);
                    // The attempt that was in flight: if it dies, recovery
                    // has burned this much of the requeue budget.
                    job.requeues = get_u64(&doc, "attempt").unwrap_or(1) as u32;
                }
            }
            Kind::Finished => {
                let Some(job) = self.jobs.get_mut(&id) else {
                    self.skipped += 1;
                    return;
                };
                if job.terminal() {
                    self.skipped += 1; // duplicate Finished: first one wins
                    return;
                }
                let state = get_str(&doc, "state")
                    .and_then(state_from_name)
                    .filter(|s| s.is_terminal())
                    .unwrap_or(JobState::Failed);
                job.state = Some(state);
                job.error = get_str(&doc, "error").map(str::to_string);
                job.wall_ms = get_u64(&doc, "wall_ms");
                job.summary = doc.get("summary").and_then(wire::decode_summary);
                job.submission = None;
            }
            Kind::Artifacts => {
                let Some(job) = self.jobs.get_mut(&id) else {
                    self.skipped += 1;
                    return;
                };
                if job.files.is_some() {
                    return;
                }
                let files = decode_files(&doc);
                let recorded = get_str(&doc, "checksum").and_then(parse_hex_key);
                match (files, recorded) {
                    (Some(mut files), Some(sum)) if bundle_checksum(&files) == sum => {
                        files.sort_by(|a, b| a.path.cmp(&b.path));
                        job.files = Some(files);
                    }
                    _ => {
                        confmask_obs::counter_add("serve.recovery.corrupt_artifacts", 1);
                        confmask_obs::warn!(
                            "serve.recovery",
                            "job j{id}: artifact bundle failed its checksum; dropping it"
                        );
                    }
                }
            }
            Kind::Removed => {
                if self.jobs.get(&id).is_some_and(|j| !j.terminal()) {
                    self.jobs.remove(&id);
                }
            }
            Kind::Requeued => {
                let Some(job) = self.jobs.get_mut(&id) else {
                    self.skipped += 1;
                    return;
                };
                if !job.terminal() {
                    job.state = Some(JobState::Queued);
                    job.requeues = job.requeues.max(get_u64(&doc, "requeues").unwrap_or(0) as u32);
                }
            }
            Kind::Snapshot => {
                // A snapshot record inside the WAL is unexpected; skip.
                self.skipped += 1;
            }
        }
    }

    /// Loads the snapshot payload as the replay base.
    fn load_snapshot(&mut self, doc: &Json) {
        self.max_id = self
            .max_id
            .max(get_u64(doc, "next_id").unwrap_or(1).saturating_sub(1));
        let Some(jobs) = doc.get("jobs").and_then(Json::as_arr) else {
            return;
        };
        for j in jobs {
            let Some(id) = get_u64(j, "id") else { continue };
            self.max_id = self.max_id.max(id);
            let state = get_str(j, "state").and_then(state_from_name);
            let files = decode_files(j).map(|mut files| {
                files.sort_by(|a, b| a.path.cmp(&b.path));
                files
            });
            self.jobs.insert(
                id,
                ReplayJob {
                    state,
                    error: get_str(j, "error").map(str::to_string),
                    wall_ms: get_u64(j, "wall_ms"),
                    requeues: get_u64(j, "requeues").unwrap_or(0) as u32,
                    key: get_str(j, "key").and_then(parse_hex_key).unwrap_or(0),
                    submission: get_str(j, "submission").map(str::to_string),
                    summary: j.get("summary").and_then(wire::decode_summary),
                    files,
                },
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Recovery output
// ---------------------------------------------------------------------------

/// One job restored from disk.
#[derive(Debug, Clone)]
pub struct RecoveredJob {
    /// Store id.
    pub id: u64,
    /// Restored state: `Queued`/`Interrupted` jobs also appear in
    /// [`Recovery::requeue`]; terminal jobs are served as-is.
    pub state: JobState,
    /// Failure message, for `failed` jobs.
    pub error: Option<String>,
    /// Recorded wall-clock milliseconds, when finished.
    pub wall_ms: Option<u64>,
    /// Times recovery re-admitted this job.
    pub requeues: u32,
    /// Content key of the persisted submission.
    pub content_key: u64,
    /// The canonical submission body (non-terminal jobs only).
    pub submission: Option<String>,
    /// The reconstructed outcome (terminal successes with an intact
    /// bundle). The self-healing audit trail does not survive a restart,
    /// so `degradation` is empty.
    pub outcome: Option<JobOutcome>,
}

/// A job recovery wants re-executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequeueEntry {
    /// Store id.
    pub id: u64,
    /// Backoff delay before the job may re-enter the queue.
    pub delay: Duration,
}

/// Everything [`Persistence::open`] restored.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Id the store's allocator must resume from.
    pub next_id: u64,
    /// Every job on disk, in id order.
    pub jobs: Vec<RecoveredJob>,
    /// Non-terminal jobs to re-admit, with their backoff delays.
    pub requeue: Vec<RequeueEntry>,
}

impl Recovery {
    /// Jobs in a given state (test/assertion helper).
    pub fn count_state(&self, state: JobState) -> usize {
        self.jobs.iter().filter(|j| j.state == state).count()
    }
}

// ---------------------------------------------------------------------------
// Persistence
// ---------------------------------------------------------------------------

struct WalState {
    writer: WalWriter,
    since_snapshot: u64,
}

/// The durability handle a [`crate::store::JobStore`] journals through.
pub struct Persistence {
    dir: PathBuf,
    wal: Mutex<WalState>,
    snapshot_every: u64,
}

impl Persistence {
    /// Opens (or creates) a state directory, replays snapshot + WAL, and
    /// classifies non-terminal jobs for requeue. `requeue_budget` bounds
    /// how many interruptions a job survives before it is failed.
    pub fn open(
        dir: &Path,
        snapshot_every: u64,
        requeue_budget: u32,
    ) -> io::Result<(Persistence, Recovery)> {
        fs::create_dir_all(dir)?;
        // A stale in-flight snapshot is garbage from a crash mid-write.
        let _ = fs::remove_file(dir.join("snapshot.tmp"));

        let mut replay = Replay::default();
        let snapshot_path = dir.join("snapshot.bin");
        let snap_scan = wal::read_wal(&snapshot_path)?;
        if let Some(record) = snap_scan
            .records
            .iter()
            .find(|r| r.kind == Kind::Snapshot)
        {
            if let Ok(doc) = parse(std::str::from_utf8(&record.payload).unwrap_or("")) {
                replay.load_snapshot(&doc);
            }
        } else if snap_scan.discarded > 0 {
            confmask_obs::warn!(
                "serve.recovery",
                "snapshot at {} is unreadable; replaying the WAL alone",
                snapshot_path.display()
            );
        }

        let wal_path = dir.join("wal.log");
        let scan = wal::read_wal(&wal_path)?;
        if scan.discarded > 0 {
            confmask_obs::counter_add("serve.wal.torn_records", 1);
            confmask_obs::warn!(
                "serve.recovery",
                "WAL tail torn: {} byte(s) after the valid prefix discarded",
                scan.discarded
            );
        }
        for record in &scan.records {
            replay.apply(record);
        }
        confmask_obs::counter_add("serve.recovery.replayed_records", scan.records.len() as u64);
        confmask_obs::counter_add("serve.wal.skipped_records", replay.skipped);

        let writer = WalWriter::open(&wal_path, scan.valid_len)?;
        let persistence = Persistence {
            dir: dir.to_path_buf(),
            wal: Mutex::new(WalState {
                writer,
                since_snapshot: 0,
            }),
            snapshot_every: snapshot_every.max(1),
        };

        let mut recovery = Recovery {
            next_id: replay.max_id + 1,
            ..Recovery::default()
        };
        for (id, job) in &replay.jobs {
            let mut state = job.state.unwrap_or(JobState::Queued);
            let mut error = job.error.clone();
            let mut requeues = job.requeues;
            match state {
                JobState::Running | JobState::Interrupted => {
                    // Died mid-run: interrupted. Requeue within budget —
                    // `requeues` counts runs that died, so a budget of N
                    // allows N re-admissions (budget 0 never requeues).
                    confmask_obs::counter_add("serve.recovery.interrupted_jobs", 1);
                    if requeues > requeue_budget {
                        state = JobState::Failed;
                        error = Some(format!(
                            "interrupted {requeues} time(s); requeue budget ({requeue_budget}) exhausted"
                        ));
                        confmask_obs::counter_add("serve.recovery.budget_exhausted", 1);
                        persistence.append_swallow(
                            Kind::Finished,
                            &payload_finished(*id, state, error.as_deref(), None, None),
                        );
                    } else {
                        state = JobState::Interrupted;
                        persistence
                            .append_swallow(Kind::Requeued, &payload_requeued(*id, requeues));
                        recovery.requeue.push(RequeueEntry {
                            id: *id,
                            delay: backoff_delay(requeues, *id),
                        });
                        confmask_obs::counter_add("serve.recovery.requeued_jobs", 1);
                    }
                }
                JobState::Queued => {
                    // Waiting in the queue costs no budget; requeue with
                    // the backoff its prior interruptions earned.
                    recovery.requeue.push(RequeueEntry {
                        id: *id,
                        delay: backoff_delay(requeues, *id),
                    });
                    confmask_obs::counter_add("serve.recovery.requeued_jobs", 1);
                    if requeues > 0 {
                        state = JobState::Interrupted;
                    }
                }
                JobState::Done | JobState::Degraded | JobState::Failed => {}
            }
            // `requeues` reported to clients counts re-admissions so far.
            if state == JobState::Interrupted {
                requeues = job.requeues;
            }
            let outcome = match (state.has_artifacts(), &job.files) {
                (true, Some(files)) => Some(JobOutcome {
                    artifacts: files.clone(),
                    summary: job.summary.clone().unwrap_or(JobSummary {
                        routers: 0,
                        hosts: 0,
                        fake_links: 0,
                        fake_hosts: 0,
                        fake_routers: 0,
                        config_utility: 0.0,
                        route_anonymity_avg: 0.0,
                        functionally_equivalent: true,
                    }),
                    degradation: DegradationReport { attempts: vec![] },
                }),
                (true, None) => {
                    confmask_obs::counter_add("serve.recovery.missing_artifacts", 1);
                    None
                }
                _ => None,
            };
            recovery.jobs.push(RecoveredJob {
                id: *id,
                state,
                error,
                wall_ms: job.wall_ms,
                requeues,
                content_key: job.key,
                submission: job.submission.clone(),
                outcome,
            });
        }
        confmask_obs::counter_add("serve.recovered_jobs", recovery.jobs.len() as u64);
        if !recovery.jobs.is_empty() {
            confmask_obs::info!(
                "serve.recovery",
                "recovered {} job(s) from {} ({} requeued)",
                recovery.jobs.len(),
                dir.display(),
                recovery.requeue.len()
            );
        }
        Ok((persistence, recovery))
    }

    /// The state directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Whether an injected crash froze the journal (fail-point sweeps).
    pub fn halted(&self) -> bool {
        self.wal.lock().unwrap_or_else(|e| e.into_inner()).writer.halted()
    }

    /// Records appended so far (fail-point sweep sizing).
    pub fn appends(&self) -> u64 {
        self.wal.lock().unwrap_or_else(|e| e.into_inner()).writer.appends()
    }

    fn append(&self, kind: Kind, payload: &str) -> io::Result<()> {
        let mut wal = self.wal.lock().unwrap_or_else(|e| e.into_inner());
        wal.writer.append(kind, payload.as_bytes())?;
        wal.since_snapshot += 1;
        Ok(())
    }

    /// Appends, downgrading failures to a metric + warning. Used for
    /// transitions that already happened in memory: the daemon keeps
    /// serving with degraded durability rather than dying mid-job.
    fn append_swallow(&self, kind: Kind, payload: &str) {
        if let Err(e) = self.append(kind, payload) {
            confmask_obs::counter_add("serve.wal.append_errors", 1);
            confmask_obs::warn!("serve.wal", "append failed ({kind:?}): {e}");
        }
    }

    /// Journals a job acceptance. Errors propagate: a job is only
    /// accepted once its submission is durable.
    pub fn log_created(&self, id: u64, key: u64, submission: &str) -> io::Result<()> {
        self.append(Kind::Created, &payload_created(id, key, submission))
            .inspect_err(|_| {
                confmask_obs::counter_add("serve.wal.append_errors", 1);
            })
    }

    /// Journals a worker pickup.
    pub fn log_running(&self, id: u64, attempt: u32) {
        self.append_swallow(Kind::Running, &payload_running(id, attempt));
    }

    /// Journals a terminal transition (artifacts first for successes, so
    /// a durable `Finished` implies a durable bundle).
    pub fn log_finished(&self, record: &JobRecord) {
        // Nested under the worker's `serve.persist` span (same thread), so
        // job traces show how much of persistence is WAL fsync time.
        let _span = confmask_obs::span("serve.wal.finish");
        if let Some(outcome) = &record.outcome {
            self.append_swallow(Kind::Artifacts, &payload_artifacts(record.id, &outcome.artifacts));
        }
        let wall_ms = record.wall.map(|d| d.as_millis() as u64);
        self.append_swallow(
            Kind::Finished,
            &payload_finished(
                record.id,
                record.state,
                record.error.as_deref(),
                wall_ms,
                record.outcome.as_ref().map(|o| &o.summary),
            ),
        );
    }

    /// Journals a withdrawal (queue refused the created job).
    pub fn log_removed(&self, id: u64) {
        self.append_swallow(Kind::Removed, &payload_id_only(id));
    }

    /// Atomically claims a due snapshot, resetting the cadence counter so
    /// exactly one caller proceeds per window. The claimer must then
    /// capture an image (with [`Self::appends`]) under the store's jobs
    /// lock and hand both to [`Self::snapshot`].
    pub fn claim_snapshot_due(&self) -> bool {
        let mut wal = self.wal.lock().unwrap_or_else(|e| e.into_inner());
        if wal.since_snapshot >= self.snapshot_every && !wal.writer.halted() {
            wal.since_snapshot = 0;
            true
        } else {
            false
        }
    }

    /// Writes `payload` as the new snapshot and compacts the WAL. The
    /// file I/O runs without any store lock held; the WAL is truncated
    /// only if no record was appended since the image was captured
    /// (`appends_at_capture`) — a raced append stays in the log, where a
    /// replay over the new snapshot tolerates it (records the snapshot
    /// already reflects are idempotent, advance-only).
    pub fn snapshot(&self, payload: &str, appends_at_capture: u64) {
        if let Err(e) = self.write_snapshot(payload, appends_at_capture) {
            confmask_obs::counter_add("serve.wal.append_errors", 1);
            confmask_obs::warn!("serve.wal", "snapshot failed: {e}");
        }
    }

    /// Freezes the journal exactly where it is (injected crash): every
    /// later operation is ignored, as on a dead process.
    fn halt_for_test(&self) {
        self.wal.lock().unwrap_or_else(|e| e.into_inner()).writer.halt();
    }

    fn write_snapshot(&self, payload: &str, appends_at_capture: u64) -> io::Result<()> {
        match failpoint::check("snapshot.write") {
            Some(Action::IoError) | Some(Action::DiskFull) => {
                return Err(failpoint::injected_error(Action::IoError));
            }
            Some(_) => {
                self.halt_for_test();
                return Ok(());
            }
            None => {}
        }
        let tmp = self.dir.join("snapshot.tmp");
        let bin = self.dir.join("snapshot.bin");
        {
            let mut w = WalWriter::open(&tmp, 0)?;
            w.append(Kind::Snapshot, payload.as_bytes())?;
        }
        if failpoint::check("snapshot.rename").is_some() {
            self.halt_for_test();
            return Ok(());
        }
        fs::rename(&tmp, &bin)?;
        if let Ok(d) = std::fs::File::open(&self.dir) {
            let _ = d.sync_all();
        }
        if failpoint::check("snapshot.truncate").is_some() {
            self.halt_for_test();
            return Ok(());
        }
        let mut wal = self.wal.lock().unwrap_or_else(|e| e.into_inner());
        if wal.writer.appends() == appends_at_capture {
            wal.writer.reset()?;
        } else {
            // Something landed in the WAL after the image was captured;
            // truncating would destroy it. Keep the log — the next
            // snapshot compacts it.
            confmask_obs::counter_add("serve.wal.truncate_skipped", 1);
        }
        confmask_obs::counter_add("serve.wal.snapshots", 1);
        Ok(())
    }
}

pub(crate) fn encode_snapshot(jobs: &BTreeMap<u64, JobRecord>, next_id: u64) -> String {
    let mut out = format!("{{\"version\": 1, \"next_id\": {next_id}, \"jobs\": [");
    for (i, record) in jobs.values().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"id\": {}, \"state\": {}, \"requeues\": {}, \"key\": \"{:#018x}\", \
             \"error\": {}, \"wall_ms\": {}, \"submission\": {}, \"summary\": {}, ",
            record.id,
            escape(record.state.name()),
            record.requeues,
            record.content_key,
            record.error.as_deref().map(escape).unwrap_or_else(|| "null".into()),
            null_or(&record.wall.map(|d| d.as_millis() as u64)),
            record
                .submission
                .as_deref()
                .map(escape)
                .unwrap_or_else(|| "null".into()),
            record
                .outcome
                .as_ref()
                .map(|o| wire::encode_summary(&o.summary))
                .unwrap_or_else(|| "null".into()),
        );
        match &record.outcome {
            Some(o) => {
                let _ = write!(
                    out,
                    "\"checksum\": \"{:#018x}\", \"files\": {{",
                    bundle_checksum(&o.artifacts)
                );
                for (j, f) in o.artifacts.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{}: {}", escape(&f.path), escape(&f.text));
                }
                out.push_str("}}");
            }
            None => out.push_str("\"checksum\": null, \"files\": null}"),
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::JobStore;
    use std::sync::Arc;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "confmask-persist-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn outcome() -> JobOutcome {
        JobOutcome {
            artifacts: vec![
                ArtifactFile {
                    path: "routers/r1.cfg".into(),
                    text: "hostname r1\ninterface eth0\n  ip address 10.0.0.1/24\n".into(),
                },
                ArtifactFile {
                    path: "hosts/h1.cfg".into(),
                    text: "hostname h1\n".into(),
                },
            ],
            summary: JobSummary {
                routers: 1,
                hosts: 1,
                fake_links: 2,
                fake_hosts: 0,
                fake_routers: 0,
                config_utility: 0.5,
                route_anonymity_avg: 2.0,
                functionally_equivalent: true,
            },
            degradation: DegradationReport { attempts: vec![] },
        }
    }

    fn sorted_artifacts() -> Vec<ArtifactFile> {
        let mut files = outcome().artifacts;
        files.sort_by(|a, b| a.path.cmp(&b.path));
        files
    }

    fn open(dir: &Path, every: u64, budget: u32) -> (Arc<Persistence>, Recovery) {
        let (p, r) = Persistence::open(dir, every, budget).expect("open state dir");
        (Arc::new(p), r)
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_jittered() {
        assert_eq!(backoff_delay(0, 7), Duration::ZERO);
        for requeues in 1..12u32 {
            for id in [1u64, 42, 9_999] {
                let d = backoff_delay(requeues, id);
                assert_eq!(d, backoff_delay(requeues, id), "deterministic");
                let base = (100u64 << u64::from(requeues - 1).min(6)).min(5_000);
                let ms = d.as_millis() as u64;
                assert!(
                    ms >= base / 2 && ms < base,
                    "requeues {requeues} id {id}: {ms} ms outside [{}, {})",
                    base / 2,
                    base
                );
            }
        }
        // The jitter spreads different ids apart (thundering-herd guard).
        let delays: Vec<Duration> = (1..=8).map(|id| backoff_delay(3, id)).collect();
        assert!(delays.iter().any(|d| *d != delays[0]), "{delays:?}");
    }

    #[test]
    fn bundle_checksum_ignores_order_but_not_content() {
        let files = outcome().artifacts;
        let mut reversed = files.clone();
        reversed.reverse();
        assert_eq!(bundle_checksum(&files), bundle_checksum(&reversed));
        let mut tweaked = files.clone();
        tweaked[0].text.push('x');
        assert_ne!(bundle_checksum(&files), bundle_checksum(&tweaked));
        let mut renamed = files;
        renamed[0].path.push('x');
        assert_ne!(bundle_checksum(&renamed), bundle_checksum(&tweaked));
    }

    #[test]
    fn clean_lifecycle_round_trips_through_restart() {
        let _guard = failpoint::exclusive();
        failpoint::clear();
        let dir = tmp("lifecycle");
        let (p, r) = open(&dir, 1_000, 3);
        assert!(r.jobs.is_empty());
        let store = JobStore::durable(p, &r);
        let a = store.create_job(0xABCD, "body-a".into(), None, None).unwrap();
        store.mark_running(a);
        store.finish(a, Ok(outcome()));
        let b = store.create_job(0xB0B, "body-b".into(), None, None).unwrap();
        store.mark_running(b);
        store.finish(b, Err("pipeline exploded".into()));
        drop(store);

        let (_p, rec) = open(&dir, 1_000, 3);
        assert_eq!(rec.next_id, b + 1);
        assert!(rec.requeue.is_empty(), "terminal jobs are not requeued");
        let ra = rec.jobs.iter().find(|j| j.id == a).unwrap();
        assert_eq!(ra.state, JobState::Done);
        assert_eq!(ra.content_key, 0xABCD);
        assert!(ra.wall_ms.is_some());
        let out = ra.outcome.as_ref().expect("done job keeps its bundle");
        assert_eq!(out.artifacts, sorted_artifacts(), "byte-identical artifacts");
        assert_eq!(out.summary.fake_links, 2, "summary survives the WAL");
        assert!((out.summary.config_utility - 0.5).abs() < 1e-9);
        let rb = rec.jobs.iter().find(|j| j.id == b).unwrap();
        assert_eq!(rb.state, JobState::Failed);
        assert_eq!(rb.error.as_deref(), Some("pipeline exploded"));
        assert!(rb.outcome.is_none());
    }

    #[test]
    fn interrupted_job_is_requeued_until_the_budget_fails_it() {
        let _guard = failpoint::exclusive();
        failpoint::clear();
        let dir = tmp("budget");
        // Boot 1: the job dies mid-run (drop without finish = crash).
        let id = {
            let (p, r) = open(&dir, 1_000, 1);
            let store = JobStore::durable(p, &r);
            let id = store.create_job(1, "net".into(), None, None).unwrap();
            assert_eq!(store.mark_running(id), Some(1));
            id
        };
        // Boot 2: one interruption is within a budget of 1 — requeue.
        {
            let (p, rec) = open(&dir, 1_000, 1);
            assert_eq!(rec.count_state(JobState::Interrupted), 1);
            let j = &rec.jobs[0];
            assert_eq!(j.id, id);
            assert_eq!(j.requeues, 1);
            assert!(j.submission.is_some(), "submission survives for re-execution");
            assert_eq!(rec.requeue.len(), 1);
            let delay = rec.requeue[0].delay;
            assert_eq!(delay, backoff_delay(1, id), "attempt-count-aware backoff");
            assert!(delay >= Duration::from_millis(50) && delay < Duration::from_millis(100));
            // The re-run dies too.
            let store = JobStore::durable(p, &rec);
            assert_eq!(store.mark_running(id), Some(2), "attempt count survives");
        }
        // Boot 3: two interruptions exceed the budget — failed, durably.
        for boot in 0..2 {
            let (_p, rec) = open(&dir, 1_000, 1);
            let j = rec.jobs.iter().find(|j| j.id == id).unwrap();
            assert_eq!(j.state, JobState::Failed, "boot {boot}");
            assert!(
                j.error.as_deref().unwrap_or("").contains("requeue budget"),
                "boot {boot}: {:?}",
                j.error
            );
            assert!(rec.requeue.is_empty(), "boot {boot}");
        }
    }

    #[test]
    fn queued_jobs_requeue_without_burning_budget() {
        let _guard = failpoint::exclusive();
        failpoint::clear();
        let dir = tmp("queued");
        let id = {
            let (p, r) = open(&dir, 1_000, 0);
            let store = JobStore::durable(p, &r);
            store.create_job(2, "net".into(), None, None).unwrap()
        };
        // Even with a budget of zero, a job that never ran requeues
        // immediately across any number of restarts.
        for boot in 0..3 {
            let (_p, rec) = open(&dir, 1_000, 0);
            let j = rec.jobs.iter().find(|j| j.id == id).unwrap();
            assert_eq!(j.state, JobState::Queued, "boot {boot}");
            assert_eq!(rec.requeue, vec![RequeueEntry { id, delay: Duration::ZERO }]);
        }
    }

    #[test]
    fn snapshot_compacts_the_wal_and_restores_from_it() {
        let _guard = failpoint::exclusive();
        failpoint::clear();
        let dir = tmp("snapshot");
        let (p, r) = open(&dir, 1, 3); // snapshot on every finish
        let store = JobStore::durable(Arc::clone(&p), &r);
        let a = store.create_job(7, "body".into(), None, None).unwrap();
        store.mark_running(a);
        store.finish(a, Ok(outcome()));
        // The finish snapshotted and truncated the WAL to just its magic.
        let wal_len = fs::metadata(dir.join("wal.log")).unwrap().len();
        assert_eq!(wal_len, wal::MAGIC.len() as u64, "WAL compacted");
        assert!(dir.join("snapshot.bin").exists());
        assert!(!dir.join("snapshot.tmp").exists(), "tmp renamed away");
        // A later job lands in the fresh WAL, after the snapshot.
        let b = store.create_job(8, "body-b".into(), None, None).unwrap();
        drop(store);
        drop(p);

        let (_p, rec) = open(&dir, 1_000, 3);
        assert_eq!(rec.next_id, b + 1);
        let ra = rec.jobs.iter().find(|j| j.id == a).unwrap();
        assert_eq!(ra.state, JobState::Done);
        assert_eq!(
            ra.outcome.as_ref().unwrap().artifacts,
            sorted_artifacts(),
            "artifacts restored from the snapshot"
        );
        let rb = rec.jobs.iter().find(|j| j.id == b).unwrap();
        assert_eq!(rb.state, JobState::Queued);
        assert_eq!(rec.requeue.len(), 1);
    }

    #[test]
    fn snapshot_never_truncates_records_appended_after_its_capture() {
        let _guard = failpoint::exclusive();
        failpoint::clear();
        let dir = tmp("truncate-guard");
        let (p, _r) = open(&dir, 1_000, 3);
        p.log_created(1, 0xA, "one").unwrap();
        // Capture an image that knows nothing about job 2...
        let cut = p.appends();
        let stale = encode_snapshot(&BTreeMap::new(), 2);
        // ...then a submission races in before the snapshot lands.
        p.log_created(2, 0xB, "two").unwrap();
        p.snapshot(&stale, cut);
        // The WAL was NOT truncated: job 2's Created record is the only
        // proof it was acknowledged, and it must survive.
        drop(p);
        let (_p, rec) = open(&dir, 1_000, 3);
        assert!(
            rec.jobs.iter().any(|j| j.id == 2),
            "acknowledged job lost to a raced snapshot truncation"
        );

        // With no raced append, the same snapshot does compact the WAL.
        let dir = tmp("truncate-clean");
        let (p, _r) = open(&dir, 1_000, 3);
        p.log_created(1, 0xA, "one").unwrap();
        let cut = p.appends();
        p.snapshot(&encode_snapshot(&BTreeMap::new(), 2), cut);
        assert_eq!(
            fs::metadata(dir.join("wal.log")).unwrap().len(),
            wal::MAGIC.len() as u64,
            "quiescent snapshot compacts the WAL"
        );
    }

    #[test]
    fn a_failed_create_append_means_the_job_was_never_accepted() {
        let _guard = failpoint::exclusive();
        failpoint::clear();
        let dir = tmp("create-err");
        let (p, r) = open(&dir, 1_000, 3);
        let store = JobStore::durable(p, &r);
        failpoint::arm("wal.append", Action::DiskFull, 1);
        let err = store.create_job(1, "net".into(), None, None).unwrap_err();
        assert!(err.to_string().contains("injected"));
        failpoint::clear();
        assert_eq!(store.counts(), crate::store::JobCounts::default());
        // The daemon keeps serving: the next submission succeeds.
        let id = store.create_job(2, "net2".into(), None, None).unwrap();
        drop(store);
        let (_p, rec) = open(&dir, 1_000, 3);
        assert_eq!(rec.jobs.len(), 1);
        assert_eq!(rec.jobs[0].id, id);
    }

    #[test]
    fn corrupt_artifact_bundles_are_dropped_not_served() {
        let _guard = failpoint::exclusive();
        failpoint::clear();
        let dir = tmp("corrupt-bundle");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        {
            let mut w = WalWriter::open(&path, 0).unwrap();
            w.append(Kind::Created, payload_created(1, 9, "body").as_bytes())
                .unwrap();
            w.append(Kind::Running, payload_running(1, 1).as_bytes()).unwrap();
            // A bundle whose recorded checksum does not match its files.
            let bad = format!(
                "{{\"id\": 1, \"checksum\": \"{:#018x}\", \"files\": {{\"a\": \"b\"}}}}",
                0xDEAD_BEEFu64
            );
            w.append(Kind::Artifacts, bad.as_bytes()).unwrap();
            w.append(
                Kind::Finished,
                payload_finished(1, JobState::Done, None, Some(12), None).as_bytes(),
            )
            .unwrap();
        }
        let (_p, rec) = open(&dir, 1_000, 3);
        let j = &rec.jobs[0];
        assert_eq!(j.state, JobState::Done, "the job stays terminal");
        assert!(
            j.outcome.is_none(),
            "a bundle failing its checksum is absent, never partial"
        );
    }

    #[test]
    fn wal_garbage_tail_does_not_lose_settled_jobs() {
        let _guard = failpoint::exclusive();
        failpoint::clear();
        let dir = tmp("garbage-tail");
        {
            let (p, r) = open(&dir, 1_000, 3);
            let store = JobStore::durable(p, &r);
            let a = store.create_job(3, "x".into(), None, None).unwrap();
            store.mark_running(a);
            store.finish(a, Ok(outcome()));
        }
        // A crash tears the last append: garbage beyond the valid prefix.
        let path = dir.join("wal.log");
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(&[7, 0, 0, 0, 1, 0xFF, 0xAA]);
        fs::write(&path, &bytes).unwrap();
        let (_p, rec) = open(&dir, 1_000, 3);
        assert_eq!(rec.jobs.len(), 1);
        assert_eq!(rec.jobs[0].state, JobState::Done);
        assert_eq!(rec.jobs[0].outcome.as_ref().unwrap().artifacts, sorted_artifacts());
    }
}
