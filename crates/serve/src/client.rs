//! A minimal HTTP/1.1 client for `confmask submit`, the CI smoke test,
//! and the end-to-end tests — one request per connection, JSON bodies.
//!
//! Transient connection failures are retried with jittered exponential
//! backoff, so a polling client survives a daemon restart (crash +
//! recovery) instead of dying on the first `ECONNREFUSED`. Retry safety
//! is method-aware: a refused *connection* never reached the daemon, so
//! even a `POST` can retry it, but once bytes may have been delivered
//! (reset/timeout mid-exchange) only idempotent `GET`s retry — a
//! re-submitted job would be a duplicate, not a recovery.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Default per-request socket timeout.
const TIMEOUT: Duration = Duration::from_secs(60);

/// Transient failures get this many retries (so up to `RETRIES + 1`
/// attempts total) before the error surfaces.
pub const RETRIES: u32 = 4;

/// Whether an error may vanish if the request is simply tried again.
/// `ConnectionRefused` means the TCP connect itself failed — no byte
/// reached the daemon, so any method is safe to retry. The other kinds
/// can strike mid-exchange, so only idempotent `GET`s retry them.
fn transient(kind: io::ErrorKind, method: &str) -> bool {
    use io::ErrorKind::*;
    match kind {
        ConnectionRefused => true,
        ConnectionReset | ConnectionAborted | BrokenPipe | TimedOut | WouldBlock => {
            method == "GET"
        }
        _ => false,
    }
}

/// Backoff before retry `attempt` (0-based): 50 ms doubling to a 1 s cap,
/// with a deterministic jitter keyed on the target address so a fleet of
/// polling clients does not reconnect in lockstep.
fn retry_delay(attempt: u32, addr: &str) -> Duration {
    let base_ms = (50u64 << attempt.min(5)).min(1_000);
    let mut x = addr
        .bytes()
        .fold(0xCBF2_9CE4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
        })
        ^ (u64::from(attempt) << 48);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    Duration::from_millis(base_ms / 2 + x % (base_ms / 2).max(1))
}

/// A parsed response: status code, headers, and body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response headers in arrival order (names lowercased).
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The body as UTF-8 (lossy — error bodies are for humans).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// The first header with this name (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

fn bad(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// Sends one request to `addr` (`host:port`) and reads the response,
/// retrying transient connection failures up to [`RETRIES`] times.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<ClientResponse> {
    request_with_retries(addr, method, path, body, RETRIES)
}

fn request_with_retries(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    retries: u32,
) -> io::Result<ClientResponse> {
    let mut attempt = 0;
    loop {
        match request_once(addr, method, path, body) {
            Ok(response) => return Ok(response),
            Err(e) if attempt < retries && transient(e.kind(), method) => {
                let delay = retry_delay(attempt, addr);
                confmask_obs::counter_add("serve.client.retries", 1);
                confmask_obs::warn!(
                    "serve.client",
                    "{method} {path}: {e}; retrying in {}ms ({} left)",
                    delay.as_millis(),
                    retries - attempt
                );
                std::thread::sleep(delay);
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// One attempt: connect, write the request, read the response.
fn request_once(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<ClientResponse> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(TIMEOUT))?;
    stream.set_write_timeout(Some(TIMEOUT))?;
    let mut writer = stream.try_clone()?;
    let payload = body.unwrap_or("");
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        payload.len()
    )?;
    writer.write_all(payload.as_bytes())?;
    writer.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad(format!("malformed status line: {status_line:?}")))?;

    let mut content_length: Option<usize> = None;
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(bad("connection closed mid-headers".to_string()));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            }
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }

    let mut body = Vec::new();
    match content_length {
        Some(n) => {
            body.resize(n, 0);
            reader.read_exact(&mut body)?;
        }
        None => {
            reader.read_to_end(&mut body)?;
        }
    }
    Ok(ClientResponse { status, headers, body })
}

/// `GET path`.
pub fn get(addr: &str, path: &str) -> io::Result<ClientResponse> {
    request(addr, "GET", path, None)
}

/// `POST path` with a JSON body.
pub fn post(addr: &str, path: &str, body: &str) -> io::Result<ClientResponse> {
    request(addr, "POST", path, Some(body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_safety_is_method_aware() {
        use io::ErrorKind::*;
        // A refused connect never delivered a byte: safe for any method.
        assert!(transient(ConnectionRefused, "GET"));
        assert!(transient(ConnectionRefused, "POST"));
        // Mid-exchange failures retry only on idempotent reads — a POST
        // might have been accepted before the connection died, and a
        // retry would double-submit the job.
        for kind in [ConnectionReset, ConnectionAborted, BrokenPipe, TimedOut] {
            assert!(transient(kind, "GET"), "{kind:?}");
            assert!(!transient(kind, "POST"), "{kind:?}");
        }
        // Hard failures never retry.
        assert!(!transient(InvalidData, "GET"));
        assert!(!transient(PermissionDenied, "GET"));
    }

    #[test]
    fn retry_delays_back_off_and_stay_bounded() {
        let mut previous = Duration::ZERO;
        for attempt in 0..8 {
            let d = retry_delay(attempt, "127.0.0.1:7077");
            assert!(d >= previous.min(Duration::from_millis(500)), "attempt {attempt}");
            assert!(d <= Duration::from_secs(1));
            // Deterministic: same inputs, same jitter.
            assert_eq!(d, retry_delay(attempt, "127.0.0.1:7077"));
            previous = d;
        }
        // Different addresses jitter differently (de-synchronized fleet).
        assert_ne!(retry_delay(3, "a:1"), retry_delay(3, "b:2"));
    }

    #[test]
    fn refused_connection_is_retried_then_surfaced() {
        // Bind an ephemeral port, then drop the listener: connecting to
        // the freed loopback port is refused immediately. (A well-known
        // low port would be PermissionDenied — not refused — in
        // sandboxed environments, making the test flaky there.)
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().to_string()
        };
        let started = std::time::Instant::now();
        let err = request_with_retries(&addr, "GET", "/healthz", None, 1).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
        // The single allowed retry slept through its (deterministic)
        // backoff before the error surfaced.
        assert!(
            started.elapsed() >= retry_delay(0, &addr),
            "retry should have backed off by {:?}, took {:?}",
            retry_delay(0, &addr),
            started.elapsed()
        );
    }
}
