//! A minimal HTTP/1.1 client for `confmask submit`, the CI smoke test,
//! and the end-to-end tests — one request per connection, JSON bodies.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Default per-request socket timeout.
const TIMEOUT: Duration = Duration::from_secs(60);

/// A parsed response: status code and body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The body as UTF-8 (lossy — error bodies are for humans).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

fn bad(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// Sends one request to `addr` (`host:port`) and reads the response.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<ClientResponse> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(TIMEOUT))?;
    stream.set_write_timeout(Some(TIMEOUT))?;
    let mut writer = stream.try_clone()?;
    let payload = body.unwrap_or("");
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        payload.len()
    )?;
    writer.write_all(payload.as_bytes())?;
    writer.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad(format!("malformed status line: {status_line:?}")))?;

    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(bad("connection closed mid-headers".to_string()));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            }
        }
    }

    let mut body = Vec::new();
    match content_length {
        Some(n) => {
            body.resize(n, 0);
            reader.read_exact(&mut body)?;
        }
        None => {
            reader.read_to_end(&mut body)?;
        }
    }
    Ok(ClientResponse { status, body })
}

/// `GET path`.
pub fn get(addr: &str, path: &str) -> io::Result<ClientResponse> {
    request(addr, "GET", path, None)
}

/// `POST path` with a JSON body.
pub fn post(addr: &str, path: &str, body: &str) -> io::Result<ClientResponse> {
    request(addr, "POST", path, Some(body))
}
