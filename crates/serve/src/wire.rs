//! JSON wire types of the `/v1` API.
//!
//! A config bundle travels as a "tar-less" multi-file JSON object — file
//! text keyed by hostname — so the API needs no multipart or archive
//! support. Encoders and decoders live together here and are exercised
//! round-trip by the unit tests; the client (`confmask submit`) uses the
//! same functions as the server.

use crate::store::JobRecord;
use confmask::{ArtifactFile, EquivalenceMode, JobSummary, Params, Strategy};
use confmask_config::{parse_host_as, parse_router_as, NetworkConfigs, Vendor};
use confmask_obs::json::{escape, parse, Json};
use std::fmt::Write as _;
use std::time::Duration;

/// Job-submission payload: the parsed bundle plus pipeline parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Submission {
    /// The network to anonymize.
    pub configs: NetworkConfigs,
    /// Pipeline parameters (defaults for everything the client omitted).
    pub params: Params,
    /// Resolved configuration dialect. `"auto"` (or an absent field) is
    /// resolved by [`Vendor::sniff_all`] at decode time, so the value is
    /// always concrete — the canonical journaled submission never says
    /// `auto`, which keeps crash-recovery replay deterministic.
    pub vendor: Vendor,
    /// Anonymization strategy. An absent field defaults to `confmask`,
    /// and the canonical journaled submission always names it.
    pub strategy: Strategy,
}

fn mode_name(mode: EquivalenceMode) -> &'static str {
    match mode {
        EquivalenceMode::ConfMask => "confmask",
        EquivalenceMode::Strawman1 => "strawman1",
        EquivalenceMode::Strawman2 => "strawman2",
    }
}

fn mode_from_name(name: &str) -> Option<EquivalenceMode> {
    match name {
        "confmask" => Some(EquivalenceMode::ConfMask),
        "strawman1" => Some(EquivalenceMode::Strawman1),
        "strawman2" => Some(EquivalenceMode::Strawman2),
        _ => None,
    }
}

/// Encodes a submission request body (client side). The bundle's config
/// files are emitted in `vendor`'s dialect and the vendor is named in the
/// body, so the server round-trips the job in the dialect it arrived in.
pub fn encode_submit(
    configs: &NetworkConfigs,
    params: &Params,
    vendor: Vendor,
    strategy: Strategy,
) -> String {
    let mut out = String::from("{\n  \"params\": {");
    let _ = write!(
        out,
        "\"k_r\": {}, \"k_h\": {}, \"noise_p\": {}, \"seed\": {}, \"mode\": {}, \
         \"fake_routers\": {}, \"max_retries\": {}, \"stage_deadline_secs\": {}",
        params.k_r,
        params.k_h,
        params.noise_p,
        params.seed,
        escape(mode_name(params.mode)),
        params.fake_routers,
        params.max_retries,
        params
            .stage_deadline
            .map(|d| d.as_secs().to_string())
            .unwrap_or_else(|| "null".into()),
    );
    out.push_str("},\n");
    let _ = writeln!(out, "  \"vendor\": {},", escape(vendor.name()));
    let _ = writeln!(out, "  \"strategy\": {},", escape(strategy.name()));
    out.push_str("  \"routers\": {");
    for (i, (name, rc)) in configs.routers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    {}: {}", escape(name), escape(&rc.emit_as(vendor)));
    }
    out.push_str("\n  },\n  \"hosts\": {");
    for (i, (name, hc)) in configs.hosts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    {}: {}", escape(name), escape(&hc.emit_as(vendor)));
    }
    out.push_str("\n  }\n}\n");
    out
}

/// Reads `Params` overrides from the optional `params` object.
fn decode_params(doc: &Json) -> Result<Params, String> {
    let mut params = Params::default();
    let Some(obj) = doc.get("params") else {
        return Ok(params);
    };
    let obj = obj
        .as_obj()
        .ok_or_else(|| "params must be an object".to_string())?;
    for (key, value) in obj {
        let int = |v: &Json| v.as_u64().map(|n| n as usize);
        match key.as_str() {
            "k_r" => params.k_r = int(value).ok_or("k_r expects an integer")?,
            "k_h" => params.k_h = int(value).ok_or("k_h expects an integer")?,
            "noise_p" => params.noise_p = value.as_f64().ok_or("noise_p expects a number")?,
            "seed" => params.seed = value.as_u64().ok_or("seed expects an integer")?,
            "fake_routers" => {
                params.fake_routers = int(value).ok_or("fake_routers expects an integer")?
            }
            "max_retries" => {
                params.max_retries = int(value).ok_or("max_retries expects an integer")?
            }
            "stage_deadline_secs" => {
                params.stage_deadline = match value {
                    Json::Null => None,
                    v => Some(Duration::from_secs(
                        v.as_u64().ok_or("stage_deadline_secs expects an integer")?,
                    )),
                }
            }
            "mode" => {
                let name = value.as_str().ok_or("mode expects a string")?;
                params.mode =
                    mode_from_name(name).ok_or_else(|| format!("unknown mode '{name}'"))?;
            }
            other => return Err(format!("unknown params field '{other}'")),
        }
    }
    Ok(params)
}

/// Decodes and **parses** a submission: every config file in the bundle
/// must be a valid router/host config, so malformed bundles are rejected
/// at submit time (HTTP 400) rather than failing later in a worker.
pub fn decode_submit(body: &[u8]) -> Result<Submission, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let doc = parse(text).map_err(|e| e.to_string())?;
    let params = decode_params(&doc)?;

    let mut router_texts = Vec::new();
    let router_obj = doc
        .get("routers")
        .and_then(Json::as_obj)
        .ok_or_else(|| "missing 'routers' object".to_string())?;
    for (name, text) in router_obj {
        let text = text
            .as_str()
            .ok_or_else(|| format!("router '{name}' must map to config text"))?;
        router_texts.push((name.as_str(), text));
    }
    if router_texts.is_empty() {
        return Err("bundle has no routers".to_string());
    }
    let mut host_texts = Vec::new();
    if let Some(host_obj) = doc.get("hosts").and_then(Json::as_obj) {
        for (name, text) in host_obj {
            let text = text
                .as_str()
                .ok_or_else(|| format!("host '{name}' must map to config text"))?;
            host_texts.push((name.as_str(), text));
        }
    }

    let vendor = match doc.get("vendor") {
        None | Some(Json::Null) => None,
        Some(v) => {
            let name = v.as_str().ok_or("vendor expects a string")?;
            match name {
                "auto" => None,
                other => Some(other.parse::<Vendor>()?),
            }
        }
    };
    // `auto`: sniff the bundle (router files carry the strongest signals).
    let vendor =
        vendor.unwrap_or_else(|| Vendor::sniff_all(router_texts.iter().map(|(_, t)| *t)));

    let strategy = match doc.get("strategy") {
        None | Some(Json::Null) => Strategy::ConfMask,
        Some(v) => v
            .as_str()
            .ok_or("strategy expects a string")?
            .parse::<Strategy>()?,
    };

    let mut routers = Vec::new();
    for (name, text) in router_texts {
        routers.push(parse_router_as(vendor, text).map_err(|e| format!("router '{name}': {e}"))?);
    }
    let mut hosts = Vec::new();
    for (name, text) in host_texts {
        hosts.push(parse_host_as(vendor, text).map_err(|e| format!("host '{name}': {e}"))?);
    }

    Ok(Submission {
        configs: NetworkConfigs::new(routers, hosts),
        params,
        vendor,
        strategy,
    })
}

/// Extracts the vendor named in a canonical (journaled) submission body
/// without parsing the whole bundle — crash recovery uses it to restore a
/// job's dialect from the WAL.
pub fn submission_vendor(body: &str) -> Option<Vendor> {
    let doc = parse(body).ok()?;
    doc.get("vendor")?.as_str()?.parse().ok()
}

/// Extracts the strategy named in a canonical (journaled) submission body
/// — the strategy counterpart of [`submission_vendor`]. `None` for bodies
/// that predate strategy support, so recovered pre-strategy jobs report
/// `strategy: null` instead of guessing.
pub fn submission_strategy(body: &str) -> Option<Strategy> {
    let doc = parse(body).ok()?;
    doc.get("strategy")?.as_str()?.parse().ok()
}

/// The submit response: `{"id": "j1", "state": "queued"}`.
pub fn encode_job_created(wire_id: &str) -> String {
    format!("{{\"id\": {}, \"state\": \"queued\"}}\n", escape(wire_id))
}

/// Extracts the job id from a submit response (client side).
pub fn decode_job_created(body: &[u8]) -> Result<String, String> {
    let text = std::str::from_utf8(body).map_err(|_| "response is not UTF-8".to_string())?;
    let doc = parse(text).map_err(|e| e.to_string())?;
    doc.get("id")
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| "response has no job id".to_string())
}

fn millis(d: Option<Duration>) -> String {
    d.map(|d| (d.as_millis() as u64).to_string()).unwrap_or_else(|| "null".into())
}

/// Encodes a [`JobSummary`] as a JSON object. Shared between the status
/// endpoint and the WAL's `Finished` records, so a summary recovered from
/// disk is indistinguishable from a freshly computed one.
pub(crate) fn encode_summary(s: &JobSummary) -> String {
    format!(
        "{{\"routers\": {}, \"hosts\": {}, \"fake_links\": {}, \
         \"fake_hosts\": {}, \"fake_routers\": {}, \"config_utility\": {:.6}, \
         \"route_anonymity_avg\": {:.6}, \"functionally_equivalent\": {}}}",
        s.routers,
        s.hosts,
        s.fake_links,
        s.fake_hosts,
        s.fake_routers,
        s.config_utility,
        s.route_anonymity_avg,
        s.functionally_equivalent
    )
}

/// Decodes a summary object (WAL replay). `None` for non-objects.
pub(crate) fn decode_summary(doc: &Json) -> Option<JobSummary> {
    doc.as_obj()?;
    Some(JobSummary {
        routers: doc.get("routers")?.as_u64()? as usize,
        hosts: doc.get("hosts")?.as_u64()? as usize,
        fake_links: doc.get("fake_links")?.as_u64()? as usize,
        fake_hosts: doc.get("fake_hosts")?.as_u64()? as usize,
        fake_routers: doc.get("fake_routers")?.as_u64()? as usize,
        config_utility: doc.get("config_utility")?.as_f64()?,
        route_anonymity_avg: doc.get("route_anonymity_avg")?.as_f64()?,
        functionally_equivalent: doc.get("functionally_equivalent") == Some(&Json::Bool(true)),
    })
}

/// Serializes a job record for `GET /v1/jobs/{id}` — state machine fields,
/// the summary when finished, and the full self-healing
/// `DegradationReport` inlined (seeds as hex strings: they exceed 2^53 and
/// would be lossy as JSON numbers).
pub fn encode_status(record: &JobRecord) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"id\": {},", escape(&record.wire_id()));
    let _ = writeln!(out, "  \"state\": {},", escape(record.state.name()));
    let _ = writeln!(
        out,
        "  \"vendor\": {},",
        record
            .vendor
            .map(|v| escape(v.name()))
            .unwrap_or_else(|| "null".into())
    );
    let _ = writeln!(
        out,
        "  \"strategy\": {},",
        record
            .strategy
            .map(|s| escape(s.name()))
            .unwrap_or_else(|| "null".into())
    );
    let _ = writeln!(out, "  \"queue_wait_ms\": {},", millis(record.queue_wait));
    let _ = writeln!(out, "  \"wall_ms\": {},", millis(record.wall));
    let _ = writeln!(out, "  \"requeues\": {},", record.requeues);
    let _ = writeln!(
        out,
        "  \"error\": {},",
        record
            .error
            .as_deref()
            .map(escape)
            .unwrap_or_else(|| "null".into())
    );
    match &record.outcome {
        None => {
            out.push_str("  \"summary\": null,\n  \"degradation\": null\n}\n");
        }
        Some(o) => {
            let _ = writeln!(out, "  \"summary\": {},", encode_summary(&o.summary));
            let _ = writeln!(
                out,
                "  \"degradation\": {{\"healed\": {}, \"failures\": {}, \"attempts\": [",
                o.degradation.healed(),
                o.degradation.failures()
            );
            for (i, a) in o.degradation.attempts.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                let _ = write!(
                    out,
                    "    {{\"attempt\": {}, \"seed\": {}, \"budget_boost\": {}, \
                     \"duration_us\": {}, \"retryable\": {}, \"error\": {}, \"stages\": [",
                    a.attempt,
                    escape(&format!("{:#018x}", a.seed)),
                    a.budget_boost,
                    a.duration.as_micros(),
                    a.retryable,
                    a.error.as_deref().map(escape).unwrap_or_else(|| "null".into())
                );
                for (j, s) in a.stages.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(
                        out,
                        "{{\"stage\": {}, \"duration_us\": {}}}",
                        escape(s.stage),
                        s.duration.as_micros()
                    );
                }
                out.push_str("]}");
            }
            out.push_str("\n  ]}\n}\n");
        }
    }
    out
}

/// The client-side view of a status response.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// Wire id (`j<n>`).
    pub id: String,
    /// State name (`queued`, `running`, `interrupted`, `done`,
    /// `degraded`, `failed`).
    pub state: String,
    /// Failure message for `failed` jobs.
    pub error: Option<String>,
    /// Whether self-healing retried (only meaningful when finished).
    pub healed: bool,
    /// Pipeline attempts made.
    pub attempts: usize,
    /// Times crash recovery re-admitted the job.
    pub requeues: u64,
    /// Pipeline wall-clock milliseconds, when finished.
    pub wall_ms: Option<u64>,
    /// Artifact dialect, when the server knows it.
    pub vendor: Option<Vendor>,
    /// Anonymization strategy, when the server knows it (`None` for jobs
    /// recovered from a pre-strategy WAL).
    pub strategy: Option<Strategy>,
}

impl JobStatus {
    /// Whether the state is final.
    pub fn is_terminal(&self) -> bool {
        matches!(self.state.as_str(), "done" | "degraded" | "failed")
    }
}

/// Parses a status response (client side).
pub fn decode_status(body: &[u8]) -> Result<JobStatus, String> {
    let text = std::str::from_utf8(body).map_err(|_| "response is not UTF-8".to_string())?;
    let doc = parse(text).map_err(|e| e.to_string())?;
    let degradation = doc.get("degradation");
    Ok(JobStatus {
        id: doc
            .get("id")
            .and_then(Json::as_str)
            .ok_or_else(|| "status has no id".to_string())?
            .to_string(),
        state: doc
            .get("state")
            .and_then(Json::as_str)
            .ok_or_else(|| "status has no state".to_string())?
            .to_string(),
        error: doc
            .get("error")
            .and_then(Json::as_str)
            .map(str::to_string),
        healed: degradation
            .and_then(|d| d.get("healed"))
            .map(|v| v == &Json::Bool(true))
            .unwrap_or(false),
        attempts: degradation
            .and_then(|d| d.get("attempts"))
            .and_then(Json::as_arr)
            .map(<[Json]>::len)
            .unwrap_or(0),
        requeues: doc.get("requeues").and_then(Json::as_u64).unwrap_or(0),
        wall_ms: doc.get("wall_ms").and_then(Json::as_u64),
        vendor: doc
            .get("vendor")
            .and_then(Json::as_str)
            .and_then(|v| v.parse().ok()),
        strategy: doc
            .get("strategy")
            .and_then(Json::as_str)
            .and_then(|s| s.parse().ok()),
    })
}

/// Serializes the artifacts bundle for `GET /v1/jobs/{id}/artifacts`,
/// naming the dialect the files are written in (null when unknown, e.g.
/// terminal jobs recovered from a pre-vendor WAL).
pub fn encode_artifacts(
    wire_id: &str,
    files: &[ArtifactFile],
    vendor: Option<Vendor>,
    strategy: Option<Strategy>,
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"id\": {},", escape(wire_id));
    let _ = writeln!(
        out,
        "  \"vendor\": {},",
        vendor.map(|v| escape(v.name())).unwrap_or_else(|| "null".into())
    );
    let _ = writeln!(
        out,
        "  \"strategy\": {},",
        strategy.map(|s| escape(s.name())).unwrap_or_else(|| "null".into())
    );
    out.push_str("  \"files\": {");
    for (i, f) in files.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    {}: {}", escape(&f.path), escape(&f.text));
    }
    if !files.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("}\n}\n");
    out
}

/// Serializes the per-job span tree for `GET /v1/jobs/{id}/trace`:
/// the job's identity, its hex request id, and the spans assembled into
/// the same nested `{name, id, …, children}` shape the obs report uses —
/// so obs tooling parses both.
pub fn encode_trace(record: &JobRecord, spans: &[confmask_obs::FinishedSpan]) -> String {
    let report = confmask_obs::Report {
        spans: spans.iter().cloned().map(Into::into).collect(),
        ..confmask_obs::Report::default()
    };
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"id\": {},", escape(&record.wire_id()));
    let _ = writeln!(out, "  \"request_id\": \"{:016x}\",", record.trace);
    let _ = writeln!(out, "  \"state\": {},", escape(record.state.name()));
    let _ = writeln!(out, "  \"span_count\": {},", spans.len());
    let _ = writeln!(out, "  \"spans\": {}", report.span_tree_json());
    out.push_str("}\n");
    out
}

/// Parses an artifacts bundle (client side), sorted by path.
pub fn decode_artifacts(body: &[u8]) -> Result<Vec<ArtifactFile>, String> {
    let text = std::str::from_utf8(body).map_err(|_| "response is not UTF-8".to_string())?;
    let doc = parse(text).map_err(|e| e.to_string())?;
    let files = doc
        .get("files")
        .and_then(Json::as_obj)
        .ok_or_else(|| "response has no files".to_string())?;
    files
        .iter()
        .map(|(path, text)| {
            Ok(ArtifactFile {
                path: path.clone(),
                text: text
                    .as_str()
                    .ok_or_else(|| format!("file '{path}' must map to text"))?
                    .to_string(),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use confmask::run_job;
    use confmask_netgen::smallnets::example_network;

    #[test]
    fn submit_round_trips_configs_and_params() {
        let net = example_network();
        let params = Params::new(4, 3)
            .with_seed(99)
            .with_mode(EquivalenceMode::Strawman1)
            .with_stage_deadline(Duration::from_secs(30));
        let body = encode_submit(&net, &params, Vendor::Ios, Strategy::NetCloak);
        let sub = decode_submit(body.as_bytes()).unwrap();
        assert_eq!(sub.configs, net);
        assert_eq!(sub.params, params);
        assert_eq!(sub.strategy, Strategy::NetCloak);
        assert_eq!(submission_strategy(&body), Some(Strategy::NetCloak));
    }

    #[test]
    fn submit_defaults_strategy_to_confmask() {
        let body = r#"{"routers": {"r": "hostname r\n"}}"#;
        let sub = decode_submit(body.as_bytes()).unwrap();
        assert_eq!(sub.strategy, Strategy::ConfMask);
        // A pre-strategy body has no strategy to extract.
        assert_eq!(submission_strategy(body), None);
        let err = decode_submit(
            br#"{"routers": {"r": "hostname r\n"}, "strategy": "netmask"}"#,
        )
        .unwrap_err();
        assert!(err.contains("unknown strategy"), "{err}");
    }

    #[test]
    fn submit_defaults_params_when_omitted() {
        let body = r#"{"routers": {"r": "hostname r\n"}}"#;
        let sub = decode_submit(body.as_bytes()).unwrap();
        assert_eq!(sub.params, Params::default());
        assert_eq!(sub.configs.routers.len(), 1);
    }

    #[test]
    fn submit_rejects_bad_bundles() {
        for (body, want) in [
            (&b"not json"[..], "invalid JSON"),
            (b"{}", "missing 'routers'"),
            (br#"{"routers": {}}"#, "no routers"),
            (br#"{"routers": {"r": 5}}"#, "config text"),
            (
                br#"{"routers": {"r": "hostname r\n"}, "params": {"mode": "nope"}}"#,
                "unknown mode",
            ),
            (
                br#"{"routers": {"r": "hostname r\n"}, "params": {"frob": 1}}"#,
                "unknown params field",
            ),
        ] {
            let err = decode_submit(body).unwrap_err();
            assert!(err.contains(want), "{err} should mention {want}");
        }
    }

    #[test]
    fn job_created_round_trips() {
        let body = encode_job_created("j7");
        assert_eq!(decode_job_created(body.as_bytes()).unwrap(), "j7");
    }

    #[test]
    fn status_of_a_finished_job_round_trips() {
        let net = example_network();
        let outcome = run_job(&net, &Params::new(3, 2)).unwrap();
        let store = crate::store::JobStore::new();
        let id = store.create();
        store.mark_running(id);
        store.finish(id, Ok(outcome));
        let record = store.get(id).unwrap();
        let body = encode_status(&record);
        let status = decode_status(body.as_bytes()).unwrap();
        assert_eq!(status.id, record.wire_id());
        assert_eq!(status.state, "done");
        assert!(status.is_terminal());
        assert!(!status.healed);
        assert_eq!(status.attempts, 1);
        assert!(status.error.is_none());
        assert!(status.wall_ms.is_some());
        // The degradation report is inlined with per-stage samples.
        assert!(body.contains("\"stage\": \"preprocess\""));
        assert!(body.contains("\"stage\": \"verify\""));
    }

    #[test]
    fn status_of_a_queued_job_has_null_outcome() {
        let store = crate::store::JobStore::new();
        let id = store.create();
        let body = encode_status(&store.get(id).unwrap());
        let status = decode_status(body.as_bytes()).unwrap();
        assert_eq!(status.state, "queued");
        assert!(!status.is_terminal());
        assert_eq!(status.attempts, 0);
        assert!(body.contains("\"summary\": null"));
    }

    #[test]
    fn artifacts_round_trip() {
        let files = vec![
            ArtifactFile {
                path: "routers/r1.cfg".into(),
                text: "hostname r1\n!\n".into(),
            },
            ArtifactFile {
                path: "hosts/h1.cfg".into(),
                text: "hostname h1\n".into(),
            },
        ];
        let body = encode_artifacts("j3", &files, Some(Vendor::Ios), Some(Strategy::ConfMask));
        assert!(body.contains("\"strategy\": \"confmask\""));
        let back = decode_artifacts(body.as_bytes()).unwrap();
        // JSON objects decode in sorted key order.
        let mut expected = files;
        expected.sort_by(|a, b| a.path.cmp(&b.path));
        assert_eq!(back, expected);
    }
}
