//! # confmask-serve — anonymization as a service
//!
//! A long-running daemon turning the one-shot ConfMask pipeline into a
//! shared service: an HTTP/1.1 JSON API over `std::net::TcpListener`
//! (zero dependencies, consistent with the workspace's offline policy), a
//! **bounded** MPMC job queue with 429 backpressure, and a fixed worker
//! pool running [`confmask::run_job`] with the PR 1 self-healing retry
//! budget and the PR 2 observability substrate.
//!
//! ## API
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /v1/jobs` | submit a config bundle + params → `202 {"id": "j1"}` |
//! | `GET /v1/jobs/{id}` | job state machine: `queued → running → done \| degraded \| failed`, with the `DegradationReport` inlined |
//! | `GET /v1/jobs/{id}/artifacts` | the anonymized configs as a multi-file JSON bundle |
//! | `GET /v1/jobs/{id}/trace` | the job's assembled span tree (request → queue wait → worker → pipeline → persistence) |
//! | `GET /metrics` | Prometheus text exposition of the metrics registry |
//! | `GET /metrics-json` | the full JSON observability report |
//! | `GET /healthz` | liveness + queue/worker/job snapshot |
//! | `POST /v1/shutdown` | graceful: stop accepting, drain workers, exit |
//!
//! A full queue answers `429 Too Many Requests` with `Retry-After` —
//! submission never blocks. Shutdown closes the queue: already-accepted
//! jobs are drained (none lost, none double-executed — see the queue
//! tests), then [`Server::run`] returns.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod failpoint;
pub mod http;
pub mod persist;
pub mod queue;
mod router;
pub mod store;
#[cfg(test)]
mod sweep_tests;
pub mod wal;
pub mod wire;
mod worker;

use crate::persist::{Persistence, Recovery};
use crate::queue::Bounded;
use crate::store::{JobCounts, JobStore};
use crate::worker::QueuedJob;
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Daemon configuration (the `confmask serve` flags).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeOptions {
    /// Bind address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Worker threads; 0 means available parallelism.
    pub workers: usize,
    /// Queue capacity (`--queue-cap`); beyond it submissions get 429.
    pub queue_cap: usize,
    /// Per-stage deadline applied to jobs that did not request their own
    /// (`--job-timeout-secs`).
    pub job_timeout: Option<Duration>,
    /// Durable state directory (`--state-dir`): WAL + snapshots live
    /// here and jobs survive crashes. `None` keeps the store in memory.
    pub state_dir: Option<PathBuf>,
    /// How many times a crash-interrupted job is re-admitted before it is
    /// failed (`--requeue-budget`).
    pub requeue_budget: u32,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:7077".to_string(),
            workers: 0,
            queue_cap: 64,
            job_timeout: None,
            state_dir: None,
            requeue_budget: persist::DEFAULT_REQUEUE_BUDGET,
        }
    }
}

/// Shared server state: the queue, the store, and the shutdown switch.
pub struct ServerState {
    pub(crate) queue: Arc<Bounded<QueuedJob>>,
    pub(crate) store: Arc<JobStore>,
    pub(crate) shutdown: AtomicBool,
    pub(crate) workers: usize,
    addr: SocketAddr,
}

impl ServerState {
    /// Wakes the accept loop (it blocks in `accept`) with a throwaway
    /// local connection so it can observe the shutdown flag.
    fn wake(&self) {
        let _ = TcpStream::connect(self.addr);
    }
}

/// The daemon: a bound listener plus its worker pool. Construct with
/// [`Server::bind`], then [`Server::run`] until shutdown.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    pool: worker::WorkerPool,
    requeue: Option<JoinHandle<()>>,
}

/// Registers every `serve.*` metric at zero so the metric set is stable
/// regardless of traffic (the same convention the simulator uses for
/// `sim.*`).
fn register_metrics() {
    // The config codec's parse counters (per-vendor included) — the
    // daemon parses bundles on every submission.
    confmask_config::register_metrics();
    confmask_obs::counter_add("serve.jobs_accepted", 0);
    confmask_obs::counter_add("serve.jobs_rejected", 0);
    confmask_obs::counter_add("serve.jobs_done", 0);
    confmask_obs::counter_add("serve.jobs_failed", 0);
    confmask_obs::gauge_set("serve.queue_depth", 0.0);
    confmask_obs::gauge_set("serve.http.in_flight", 0.0);
    confmask_obs::histogram_register("serve.job_wall_ms");
    // Per-phase job latencies (milliseconds): the queue hop, the pipeline
    // run, and the completion persistence — the numbers `confmask
    // loadgen` and every serve-scaling PR move.
    confmask_obs::histogram_register("serve.queue_wait_ms");
    confmask_obs::histogram_register("serve.run_ms");
    confmask_obs::histogram_register("serve.persist_ms");
    confmask_obs::histogram_register("serve.queue_depth_sampled");
    // Per-endpoint end-to-end request latencies (the router's closed
    // name set, see `router::endpoint_metric`).
    confmask_obs::histogram_register("serve.http.submit_ms");
    confmask_obs::histogram_register("serve.http.status_ms");
    confmask_obs::histogram_register("serve.http.artifacts_ms");
    confmask_obs::histogram_register("serve.http.trace_ms");
    confmask_obs::histogram_register("serve.http.health_ms");
    confmask_obs::histogram_register("serve.http.metrics_ms");
    confmask_obs::histogram_register("serve.http.shutdown_ms");
    confmask_obs::histogram_register("serve.http.other_ms");
    // Trace-index pressure (bounded per-trace span buffer in obs).
    confmask_obs::counter_add("obs.traces_evicted", 0);
    confmask_obs::counter_add("obs.trace_spans_dropped", 0);
    // Durability layer: registered at zero so the metric set is identical
    // whether or not `--state-dir` is in use.
    confmask_obs::counter_add("serve.wal.appends", 0);
    confmask_obs::counter_add("serve.wal.bytes", 0);
    confmask_obs::counter_add("serve.wal.append_errors", 0);
    confmask_obs::counter_add("serve.wal.snapshots", 0);
    confmask_obs::counter_add("serve.wal.torn_records", 0);
    confmask_obs::counter_add("serve.wal.skipped_records", 0);
    confmask_obs::counter_add("serve.recovery.replayed_records", 0);
    confmask_obs::counter_add("serve.recovery.requeued_jobs", 0);
    confmask_obs::counter_add("serve.recovery.interrupted_jobs", 0);
    confmask_obs::counter_add("serve.recovery.budget_exhausted", 0);
    confmask_obs::counter_add("serve.recovery.corrupt_artifacts", 0);
    confmask_obs::counter_add("serve.recovery.missing_artifacts", 0);
    confmask_obs::counter_add("serve.recovered_jobs", 0);
    confmask_obs::counter_add("serve.store.invalid_transition", 0);
    // The workers share the process-wide simulation cache and executor;
    // their metric sets must likewise be complete before the first job
    // arrives. The executor pool is sized by CONFMASK_THREADS (or
    // available parallelism), independent of `--workers`: workers bound
    // job concurrency, the executor bounds per-job simulation fan-out.
    confmask_sim_delta::register_metrics();
    confmask_exec::register_metrics();
    // Every strategy a submission can name (`anon.strategy.*` plus the
    // `netcloak.*` expansion counters): the daemon's metric set must not
    // depend on which strategies the traffic happened to exercise.
    confmask::register_strategy_metrics();
}

impl Server {
    /// Binds the listener, spawns the worker pool, and registers the
    /// `serve.*` metrics. Enables global metrics collection — a daemon's
    /// `/metrics` endpoint must be live from the first request.
    pub fn bind(opts: &ServeOptions) -> io::Result<Server> {
        confmask_obs::set_enabled(true);
        register_metrics();
        failpoint::load_env();
        let listener = TcpListener::bind(&opts.addr)?;
        let workers = if opts.workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2)
        } else {
            opts.workers
        };
        let queue = Arc::new(Bounded::new(opts.queue_cap));
        let (store, recovery) = match &opts.state_dir {
            Some(dir) => {
                let (persistence, recovery) =
                    Persistence::open(dir, persist::DEFAULT_SNAPSHOT_EVERY, opts.requeue_budget)?;
                let store = JobStore::durable(Arc::new(persistence), &recovery);
                (Arc::new(store), Some(recovery))
            }
            None => (Arc::new(JobStore::new()), None),
        };
        let pool = worker::spawn(
            workers,
            Arc::clone(&queue),
            Arc::clone(&store),
            opts.job_timeout,
        );
        let requeue = recovery
            .filter(|r| !r.requeue.is_empty())
            .map(|r| spawn_requeue(r, Arc::clone(&queue), Arc::clone(&store)));
        let state = Arc::new(ServerState {
            queue,
            store,
            shutdown: AtomicBool::new(false),
            workers,
            addr: listener.local_addr()?,
        });
        Ok(Server {
            listener,
            state,
            pool,
            requeue,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.state.workers
    }

    /// Serves until `POST /v1/shutdown`, then drains the worker pool and
    /// returns the final per-state job counts. Connection handlers run on
    /// short-lived threads; the job queue, not the connection count, is
    /// the admission control.
    pub fn run(self) -> io::Result<JobCounts> {
        // Queue-depth sampler: the gauge is otherwise only updated on
        // push/pop edges, so a stuck queue would freeze it at a stale
        // value. A 50 ms cadence also feeds the sampled-depth histogram
        // (p99 backlog at saturation — a loadgen headline number).
        let sampler = {
            let state = Arc::clone(&self.state);
            std::thread::Builder::new()
                .name("confmask-sampler".to_string())
                .spawn(move || {
                    while !state.shutdown.load(Ordering::Acquire) {
                        let depth = state.queue.len();
                        confmask_obs::gauge_set("serve.queue_depth", depth as f64);
                        confmask_obs::observe("serve.queue_depth_sampled", depth as u64);
                        std::thread::sleep(Duration::from_millis(50));
                    }
                })
                .expect("spawn sampler thread")
        };
        for stream in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::Acquire) {
                break;
            }
            match stream {
                Ok(stream) => {
                    let state = Arc::clone(&self.state);
                    let _ = std::thread::Builder::new()
                        .name("confmask-http".to_string())
                        .spawn(move || handle_connection(stream, &state));
                }
                Err(e) => {
                    confmask_obs::warn!("serve", "accept failed: {e}");
                }
            }
        }
        // Drain: the queue is already closed by the shutdown handler
        // (closing again is idempotent); workers finish what was accepted.
        self.state.queue.close();
        if let Some(h) = self.requeue {
            let _ = h.join();
        }
        self.pool.join();
        let _ = sampler.join();
        let counts = self.state.store.counts();
        confmask_obs::info!(
            "serve",
            "drained: {} done, {} degraded, {} failed",
            counts.done,
            counts.degraded,
            counts.failed
        );
        Ok(counts)
    }
}

/// Re-admits recovered jobs on a dedicated thread, honoring each job's
/// jittered backoff delay. Pushes retry through transient queue-full
/// backpressure; a closed queue (shutdown) leaves the remaining jobs
/// non-terminal in the durable store, where the next boot's recovery
/// picks them up again.
fn spawn_requeue(
    recovery: Recovery,
    queue: Arc<Bounded<QueuedJob>>,
    store: Arc<JobStore>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("confmask-requeue".to_string())
        .spawn(move || {
            let boot = Instant::now();
            let mut entries: Vec<(Duration, u64)> = recovery
                .requeue
                .iter()
                .map(|e| (e.delay, e.id))
                .collect();
            entries.sort();
            let submissions: std::collections::BTreeMap<u64, &str> = recovery
                .jobs
                .iter()
                .filter_map(|j| Some((j.id, j.submission.as_deref()?)))
                .collect();
            'entries: for (delay, id) in entries {
                if let Some(remaining) = delay.checked_sub(boot.elapsed()) {
                    std::thread::sleep(remaining);
                }
                let Some(sub) = submissions
                    .get(&id)
                    .and_then(|s| wire::decode_submit(s.as_bytes()).ok())
                else {
                    store.finish(
                        id,
                        Err("recovered submission no longer decodes".to_string()),
                    );
                    continue;
                };
                // A requeued job gets a fresh trace (the original request's
                // trace belongs to the process that crashed); the store's
                // record points at whichever trace actually ran the job.
                let trace = confmask_obs::TraceId::mint();
                store.set_trace(id, trace.get());
                confmask_obs::retain_trace(trace.get());
                let mut job = QueuedJob {
                    id,
                    configs: sub.configs,
                    params: sub.params,
                    vendor: sub.vendor,
                    strategy: sub.strategy,
                    ctx: confmask_obs::SpanContext::root(trace),
                    enqueued_us: confmask_obs::now_us(),
                };
                loop {
                    match queue.push(job) {
                        Ok(_) => {
                            confmask_obs::info!("serve.recovery", "requeued job j{id}");
                            break;
                        }
                        Err(queue::PushError::Full(back)) => {
                            job = back;
                            std::thread::sleep(Duration::from_millis(50));
                        }
                        Err(queue::PushError::Closed(_)) => break 'entries,
                    }
                }
            }
        })
        .expect("spawn requeue thread")
}

/// Requests currently being handled (drives the `serve.http.in_flight`
/// gauge; process-global, like the metrics registry it feeds).
static IN_FLIGHT: std::sync::atomic::AtomicI64 = std::sync::atomic::AtomicI64::new(0);

/// RAII in-flight accounting: increments on open, decrements on every
/// exit path (including handler panics caught by the thread boundary).
struct InFlight;

impl InFlight {
    fn enter() -> InFlight {
        IN_FLIGHT.fetch_add(1, Ordering::Relaxed);
        // Publish a fresh read rather than the RMW's local result: two
        // racing threads can still order their gauge_set calls either way,
        // but each published value reflects the counter at publish time,
        // so the gauge re-converges on the very next update instead of
        // holding a value the counter never had.
        confmask_obs::gauge_set(
            "serve.http.in_flight",
            IN_FLIGHT.load(Ordering::Relaxed) as f64,
        );
        InFlight
    }
}

impl Drop for InFlight {
    fn drop(&mut self) {
        IN_FLIGHT.fetch_sub(1, Ordering::Relaxed);
        confmask_obs::gauge_set(
            "serve.http.in_flight",
            IN_FLIGHT.load(Ordering::Relaxed) as f64,
        );
    }
}

/// Handles one connection: read a request, route it, write the response.
/// `Connection: close` keeps the protocol state machine trivial; clients
/// poll with fresh connections.
///
/// Every parsed request is stamped with a fresh [`confmask_obs::TraceId`]
/// — echoed back as `X-Request-Id` — and handled under a `serve.request`
/// root span whose context rides into the job queue on submissions, so a
/// job's worker/pipeline/persistence spans stitch under the HTTP request
/// that accepted it.
fn handle_connection(stream: TcpStream, state: &Arc<ServerState>) {
    let _in_flight = InFlight::enter();
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    match http::read_request(&mut reader) {
        Err(_) | Ok(None) => {}
        Ok(Some(Err(e))) => {
            let _ = http::Response::error(e.status, &e.message).write_to(&mut writer);
        }
        Ok(Some(Ok(req))) => {
            let trace = confmask_obs::TraceId::mint();
            let request_id = trace.as_hex();
            let span = confmask_obs::Span::child_of(
                "serve.request",
                confmask_obs::SpanContext::root(trace),
            );
            let response = router::route(&req, state, span.context())
                .with_header("X-Request-Id", request_id.clone());
            let status = response.status;
            let bytes = response.body.len();
            // Submissions carry the resolved strategy back in a header;
            // the access log reports it so operators can attribute load
            // per strategy without parsing bodies.
            let strategy = response
                .extra_headers
                .iter()
                .find(|(name, _)| *name == "X-Strategy")
                .map(|(_, value)| format!(" strategy={value}"))
                .unwrap_or_default();
            let _ = response.write_to(&mut writer);
            let elapsed = span.finish();
            confmask_obs::observe(
                router::endpoint_metric(&req.method, &req.path),
                elapsed.as_millis() as u64,
            );
            // The structured access log: one info line per request on
            // stderr (stdout stays machine-readable).
            confmask_obs::info!(
                "serve.http",
                "{} {} {status} {bytes}B {:.1}ms {request_id}{strategy}",
                req.method,
                req.path,
                elapsed.as_secs_f64() * 1_000.0
            );
            if req.method == "POST" && req.path == "/v1/shutdown" {
                state.wake();
            }
        }
    }
}
