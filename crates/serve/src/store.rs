//! The in-memory job store: every submitted job's state machine and, for
//! finished jobs, its outcome.
//!
//! State machine: `queued → running → done | degraded | failed`.
//! `degraded` is a successful outcome whose pipeline needed self-healing
//! (at least one retried attempt) — callers get artifacts either way, but
//! the distinction is surfaced so clients can audit healed runs.

use confmask::JobOutcome;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted and waiting in the queue.
    Queued,
    /// A worker is executing the pipeline.
    Running,
    /// Finished successfully on the first attempt.
    Done,
    /// Finished successfully, but self-healing retried at least once.
    Degraded,
    /// The pipeline failed (fatal error or retries exhausted).
    Failed,
}

impl JobState {
    /// Lowercase wire name.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Degraded => "degraded",
            JobState::Failed => "failed",
        }
    }

    /// Whether the job has reached a final state.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Degraded | JobState::Failed)
    }

    /// Whether artifacts exist for this state.
    pub fn has_artifacts(self) -> bool {
        matches!(self, JobState::Done | JobState::Degraded)
    }
}

/// One job's record. Snapshots of this are what the status endpoint
/// serializes.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Numeric id (wire format `j<n>`).
    pub id: u64,
    /// Current state.
    pub state: JobState,
    /// How long the job waited in the queue (set when a worker picks it
    /// up).
    pub queue_wait: Option<Duration>,
    /// Pipeline wall-clock time (set on completion).
    pub wall: Option<Duration>,
    /// The failure message, for `failed` jobs.
    pub error: Option<String>,
    /// The outcome (artifacts + summary + degradation), for successful
    /// jobs.
    pub outcome: Option<JobOutcome>,
    /// When the job was submitted (used to compute `queue_wait`).
    submitted: Instant,
    /// When a worker started it (used to compute `wall`).
    started: Option<Instant>,
}

impl JobRecord {
    /// The wire id (`j<n>`).
    pub fn wire_id(&self) -> String {
        format!("j{}", self.id)
    }

    /// Number of pipeline attempts made (0 while not finished).
    pub fn attempts(&self) -> usize {
        self.outcome
            .as_ref()
            .map(|o| o.degradation.attempts.len())
            .unwrap_or(0)
    }
}

/// Counts of jobs per state, for `/healthz`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobCounts {
    /// Jobs waiting in the queue.
    pub queued: usize,
    /// Jobs being executed.
    pub running: usize,
    /// Jobs finished clean.
    pub done: usize,
    /// Jobs finished after self-healing.
    pub degraded: usize,
    /// Jobs that failed.
    pub failed: usize,
}

/// The store: a monotonic id allocator plus a map of records.
#[derive(Default)]
pub struct JobStore {
    next_id: AtomicU64,
    jobs: Mutex<BTreeMap<u64, JobRecord>>,
}

impl JobStore {
    /// An empty store (ids start at 1).
    pub fn new() -> JobStore {
        JobStore {
            next_id: AtomicU64::new(1),
            jobs: Mutex::new(BTreeMap::new()),
        }
    }

    /// Parses a wire id (`j<n>`) back to the numeric id.
    pub fn parse_wire_id(id: &str) -> Option<u64> {
        id.strip_prefix('j')?.parse().ok()
    }

    /// Creates a `queued` record and returns its id.
    pub fn create(&self) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let record = JobRecord {
            id,
            state: JobState::Queued,
            queue_wait: None,
            wall: None,
            error: None,
            outcome: None,
            submitted: Instant::now(),
            started: None,
        };
        self.jobs.lock().expect("job store poisoned").insert(id, record);
        id
    }

    /// Removes a record (used when the queue refused the job after the
    /// record was created).
    pub fn remove(&self, id: u64) {
        self.jobs.lock().expect("job store poisoned").remove(&id);
    }

    /// Marks a job `running` (a worker picked it up).
    pub fn mark_running(&self, id: u64) {
        let mut jobs = self.jobs.lock().expect("job store poisoned");
        if let Some(r) = jobs.get_mut(&id) {
            let now = Instant::now();
            r.state = JobState::Running;
            r.queue_wait = Some(now.duration_since(r.submitted));
            r.started = Some(now);
        }
    }

    /// Records a finished job: `done`/`degraded` on success (depending on
    /// whether self-healing kicked in), `failed` with the message on error.
    pub fn finish(&self, id: u64, result: Result<JobOutcome, String>) {
        let mut jobs = self.jobs.lock().expect("job store poisoned");
        if let Some(r) = jobs.get_mut(&id) {
            r.wall = r.started.map(|s| s.elapsed());
            match result {
                Ok(outcome) => {
                    r.state = if outcome.degradation.healed() {
                        JobState::Degraded
                    } else {
                        JobState::Done
                    };
                    r.outcome = Some(outcome);
                }
                Err(message) => {
                    r.state = JobState::Failed;
                    r.error = Some(message);
                }
            }
        }
    }

    /// A snapshot of one record.
    pub fn get(&self, id: u64) -> Option<JobRecord> {
        self.jobs.lock().expect("job store poisoned").get(&id).cloned()
    }

    /// Per-state job counts.
    pub fn counts(&self) -> JobCounts {
        let jobs = self.jobs.lock().expect("job store poisoned");
        let mut c = JobCounts::default();
        for r in jobs.values() {
            match r.state {
                JobState::Queued => c.queued += 1,
                JobState::Running => c.running += 1,
                JobState::Done => c.done += 1,
                JobState::Degraded => c.degraded += 1,
                JobState::Failed => c.failed += 1,
            }
        }
        c
    }

    /// Whether every job in the store is terminal (nothing queued or
    /// running) — the drain condition for graceful shutdown.
    pub fn all_terminal(&self) -> bool {
        let c = self.counts();
        c.queued == 0 && c.running == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_clean_run() {
        let store = JobStore::new();
        let id = store.create();
        assert_eq!(store.get(id).unwrap().state, JobState::Queued);
        store.mark_running(id);
        let r = store.get(id).unwrap();
        assert_eq!(r.state, JobState::Running);
        assert!(r.queue_wait.is_some());
        store.finish(id, Err("boom".into()));
        let r = store.get(id).unwrap();
        assert_eq!(r.state, JobState::Failed);
        assert_eq!(r.error.as_deref(), Some("boom"));
        assert!(r.wall.is_some());
        assert!(store.all_terminal());
    }

    #[test]
    fn wire_ids_round_trip() {
        let store = JobStore::new();
        let id = store.create();
        let wire = store.get(id).unwrap().wire_id();
        assert_eq!(JobStore::parse_wire_id(&wire), Some(id));
        assert_eq!(JobStore::parse_wire_id("nope"), None);
        assert_eq!(JobStore::parse_wire_id("j"), None);
    }

    #[test]
    fn counts_and_remove() {
        let store = JobStore::new();
        let a = store.create();
        let b = store.create();
        store.mark_running(b);
        assert_eq!(
            store.counts(),
            JobCounts {
                queued: 1,
                running: 1,
                ..JobCounts::default()
            }
        );
        assert!(!store.all_terminal());
        store.remove(a);
        store.finish(b, Err("x".into()));
        assert!(store.all_terminal());
    }
}
