//! The job store: every submitted job's state machine and, for finished
//! jobs, its outcome. With a [`Persistence`] attached (`--state-dir`),
//! every transition is journaled to the WAL *before* it is acknowledged,
//! and the store can be rebuilt from a [`Recovery`] after a crash.
//!
//! State machine: `queued → running → done | degraded | failed`, plus
//! `interrupted` — a job whose worker died (daemon crash or kill) that
//! recovery has re-admitted with backoff. `degraded` is a successful
//! outcome whose pipeline needed self-healing (at least one retried
//! attempt) — callers get artifacts either way, but the distinction is
//! surfaced so clients can audit healed runs.
//!
//! Invalid transitions (finishing a removed job, starting a terminal one)
//! are refused loudly: a `warn!` plus the `serve.store.invalid_transition`
//! counter, never a silent no-op and never a state regression — this is
//! what makes job completion **exactly-once** even when recovery requeues
//! a job whose first run actually finished.

use crate::persist::{encode_snapshot, Persistence, RecoveredJob, Recovery};
use confmask::{JobOutcome, Strategy, Vendor};
use std::collections::BTreeMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted and waiting in the queue.
    Queued,
    /// A worker is executing the pipeline.
    Running,
    /// The daemon died while this job ran; recovery requeued it.
    Interrupted,
    /// Finished successfully on the first attempt.
    Done,
    /// Finished successfully, but self-healing retried at least once.
    Degraded,
    /// The pipeline failed (fatal error, retries exhausted, or the
    /// requeue budget ran out).
    Failed,
}

impl JobState {
    /// Lowercase wire name.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Interrupted => "interrupted",
            JobState::Done => "done",
            JobState::Degraded => "degraded",
            JobState::Failed => "failed",
        }
    }

    /// Whether the job has reached a final state.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Degraded | JobState::Failed)
    }

    /// Whether artifacts exist for this state.
    pub fn has_artifacts(self) -> bool {
        matches!(self, JobState::Done | JobState::Degraded)
    }
}

/// One job's record. Snapshots of this are what the status endpoint
/// serializes and what store snapshots persist.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Numeric id (wire format `j<n>`).
    pub id: u64,
    /// Current state.
    pub state: JobState,
    /// How long the job waited in the queue (set when a worker picks it
    /// up).
    pub queue_wait: Option<Duration>,
    /// Pipeline wall-clock time (set on completion).
    pub wall: Option<Duration>,
    /// The failure message, for `failed` jobs.
    pub error: Option<String>,
    /// The outcome (artifacts + summary + degradation), for successful
    /// jobs.
    pub outcome: Option<JobOutcome>,
    /// Times recovery re-admitted this job after an interruption.
    pub requeues: u32,
    /// [`confmask::content_key`] of the submission — re-running the same
    /// key yields byte-identical artifacts, which is why requeueing an
    /// interrupted job is safe.
    pub content_key: u64,
    /// The canonical submission body, kept until the job is terminal so
    /// snapshots can persist it for re-execution after a crash.
    pub submission: Option<String>,
    /// Dialect the job's artifacts are emitted in. `None` for jobs whose
    /// submission predates vendor support, for test records, and for
    /// terminal jobs recovered from a WAL (the canonical submission is
    /// dropped once a job finishes, taking the vendor name with it).
    pub vendor: Option<Vendor>,
    /// Anonymization strategy of the job. `None` for jobs whose
    /// submission predates strategy support, for test records, and for
    /// terminal jobs recovered from a WAL — mirroring `vendor`, so old
    /// state dirs replay without misreporting a strategy they never named.
    pub strategy: Option<Strategy>,
    /// Trace id of the request (or requeue) that admitted this job, for
    /// `GET /v1/jobs/{id}/trace`. In-memory only (0 = untraced): traces
    /// are diagnostics of *this* process, not durable state.
    pub trace: u64,
    /// When the job was submitted (used to compute `queue_wait`).
    submitted: Instant,
    /// When a worker started it (used to compute `wall`).
    started: Option<Instant>,
}

impl JobRecord {
    /// The wire id (`j<n>`).
    pub fn wire_id(&self) -> String {
        format!("j{}", self.id)
    }

    /// Number of pipeline attempts made (0 while not finished).
    pub fn attempts(&self) -> usize {
        self.outcome
            .as_ref()
            .map(|o| o.degradation.attempts.len())
            .unwrap_or(0)
    }

    fn from_recovered(job: &RecoveredJob) -> JobRecord {
        JobRecord {
            id: job.id,
            state: job.state,
            queue_wait: None,
            wall: job.wall_ms.map(Duration::from_millis),
            error: job.error.clone(),
            outcome: job.outcome.clone(),
            requeues: job.requeues,
            content_key: job.content_key,
            submission: job.submission.clone(),
            vendor: job
                .submission
                .as_deref()
                .and_then(crate::wire::submission_vendor),
            strategy: job
                .submission
                .as_deref()
                .and_then(crate::wire::submission_strategy),
            trace: 0,
            submitted: Instant::now(),
            started: None,
        }
    }
}

/// Counts of jobs per state, for `/healthz`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobCounts {
    /// Jobs waiting in the queue.
    pub queued: usize,
    /// Jobs being executed.
    pub running: usize,
    /// Jobs awaiting re-execution after a crash interrupted them.
    pub interrupted: usize,
    /// Jobs finished clean.
    pub done: usize,
    /// Jobs finished after self-healing.
    pub degraded: usize,
    /// Jobs that failed.
    pub failed: usize,
}

/// The store: a monotonic id allocator plus a map of records, optionally
/// journaling through a [`Persistence`].
#[derive(Default)]
pub struct JobStore {
    next_id: AtomicU64,
    jobs: Mutex<BTreeMap<u64, JobRecord>>,
    persist: Option<Arc<Persistence>>,
}

fn invalid_transition(op: &str, id: u64) {
    confmask_obs::counter_add("serve.store.invalid_transition", 1);
    confmask_obs::warn!(
        "serve.store",
        "{op} on job j{id} refused: record is missing or already terminal"
    );
}

impl JobStore {
    /// An empty, ephemeral store (ids start at 1, nothing journaled).
    pub fn new() -> JobStore {
        JobStore {
            next_id: AtomicU64::new(1),
            jobs: Mutex::new(BTreeMap::new()),
            persist: None,
        }
    }

    /// A durable store: journals through `persist` and starts from what
    /// [`Persistence::open`] recovered.
    pub fn durable(persist: Arc<Persistence>, recovery: &Recovery) -> JobStore {
        let jobs = recovery
            .jobs
            .iter()
            .map(|j| (j.id, JobRecord::from_recovered(j)))
            .collect();
        JobStore {
            next_id: AtomicU64::new(recovery.next_id.max(1)),
            jobs: Mutex::new(jobs),
            persist: Some(persist),
        }
    }

    /// The attached persistence, if this store is durable.
    pub fn persistence(&self) -> Option<&Arc<Persistence>> {
        self.persist.as_ref()
    }

    /// Parses a wire id (`j<n>`) back to the numeric id.
    pub fn parse_wire_id(id: &str) -> Option<u64> {
        id.strip_prefix('j')?.parse().ok()
    }

    /// Creates a `queued` record for tests and ephemeral stores.
    pub fn create(&self) -> u64 {
        self.create_job(0, String::new(), None, None)
            .expect("creating a job in an ephemeral store cannot fail")
    }

    /// Creates a `queued` record and returns its id. With persistence
    /// attached the `Created` record is journaled (and fsynced) *before*
    /// this returns — an error means the job was never accepted, and the
    /// caller must fail the submission.
    pub fn create_job(
        &self,
        content_key: u64,
        submission: String,
        vendor: Option<Vendor>,
        strategy: Option<Strategy>,
    ) -> io::Result<u64> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        // The append and the map insert happen under the jobs lock (the
        // jobs → wal order every journaling path uses): were the append
        // outside it, a concurrent snapshot could capture a map that does
        // not yet contain this job and then truncate the WAL, destroying
        // the fsynced `Created` record the 202 acknowledgement rests on.
        let mut jobs = self.jobs.lock().expect("job store poisoned");
        if let Some(p) = &self.persist {
            p.log_created(id, content_key, &submission)?;
        }
        let record = JobRecord {
            id,
            state: JobState::Queued,
            queue_wait: None,
            wall: None,
            error: None,
            outcome: None,
            requeues: 0,
            content_key,
            submission: Some(submission),
            vendor,
            strategy,
            trace: 0,
            submitted: Instant::now(),
            started: None,
        };
        jobs.insert(id, record);
        Ok(id)
    }

    /// Attaches the admitting request's trace id to a job (in-memory
    /// only — never journaled). A requeue overwrites it: the trace the
    /// endpoint serves is the one that actually ran the job.
    pub fn set_trace(&self, id: u64, trace: u64) {
        if let Some(r) = self.jobs.lock().expect("job store poisoned").get_mut(&id) {
            r.trace = trace;
        }
    }

    /// Removes a record (used when the queue refused the job after the
    /// record was created).
    pub fn remove(&self, id: u64) {
        let removed = self.jobs.lock().expect("job store poisoned").remove(&id);
        if removed.is_some() {
            if let Some(p) = &self.persist {
                p.log_removed(id);
            }
        }
    }

    /// Marks a job `running` and returns the attempt number (1 for a
    /// first run, `requeues + 1` after interruptions). Refuses missing or
    /// terminal jobs with a warning and the invalid-transition counter —
    /// a worker must then drop the queue entry, not execute it.
    pub fn mark_running(&self, id: u64) -> Option<u32> {
        let mut jobs = self.jobs.lock().expect("job store poisoned");
        let Some(r) = jobs.get_mut(&id).filter(|r| !r.state.is_terminal()) else {
            invalid_transition("mark_running", id);
            return None;
        };
        let now = Instant::now();
        r.state = JobState::Running;
        r.queue_wait = Some(now.duration_since(r.submitted));
        r.started = Some(now);
        let attempt = r.requeues + 1;
        if let Some(p) = &self.persist {
            p.log_running(id, attempt);
        }
        Some(attempt)
    }

    /// Records a finished job: `done`/`degraded` on success (depending on
    /// whether self-healing kicked in), `failed` with the message on
    /// error. Refuses missing or already-terminal jobs (warning +
    /// counter): the first completion wins, a duplicate is discarded.
    ///
    /// The jobs lock is held only for the state transition; the WAL
    /// appends and any due snapshot run outside it, so submissions and
    /// status reads never stall behind completion fsyncs. That is safe
    /// because the transition itself is what enforces first-completion-
    /// wins, and the snapshot's WAL truncation is guarded by the append
    /// count captured with its image (see [`Persistence::snapshot`]).
    pub fn finish(&self, id: u64, result: Result<JobOutcome, String>) {
        let record = {
            let mut jobs = self.jobs.lock().expect("job store poisoned");
            let Some(r) = jobs.get_mut(&id).filter(|r| !r.state.is_terminal()) else {
                invalid_transition("finish", id);
                return;
            };
            r.wall = r.started.map(|s| s.elapsed());
            match result {
                Ok(outcome) => {
                    r.state = if outcome.degradation.healed() {
                        JobState::Degraded
                    } else {
                        JobState::Done
                    };
                    r.outcome = Some(outcome);
                }
                Err(message) => {
                    r.state = JobState::Failed;
                    r.error = Some(message);
                }
            }
            r.submission = None; // terminal jobs are never re-executed
            r.clone()
        };
        let Some(p) = &self.persist else { return };
        p.log_finished(&record);
        if p.claim_snapshot_due() {
            // The image and its WAL cut point are captured together under
            // the jobs lock, so every record counted in `cut` describes a
            // transition the image already contains; truncation applies
            // only if no later append raced in.
            let (payload, cut) = {
                let jobs = self.jobs.lock().expect("job store poisoned");
                let payload = encode_snapshot(&jobs, self.next_id.load(Ordering::Relaxed));
                (payload, p.appends())
            };
            p.snapshot(&payload, cut);
        }
    }

    /// A snapshot of one record.
    pub fn get(&self, id: u64) -> Option<JobRecord> {
        self.jobs.lock().expect("job store poisoned").get(&id).cloned()
    }

    /// Per-state job counts.
    pub fn counts(&self) -> JobCounts {
        let jobs = self.jobs.lock().expect("job store poisoned");
        let mut c = JobCounts::default();
        for r in jobs.values() {
            match r.state {
                JobState::Queued => c.queued += 1,
                JobState::Running => c.running += 1,
                JobState::Interrupted => c.interrupted += 1,
                JobState::Done => c.done += 1,
                JobState::Degraded => c.degraded += 1,
                JobState::Failed => c.failed += 1,
            }
        }
        c
    }

    /// Whether every job in the store is terminal (nothing queued,
    /// running, or awaiting re-execution) — the drain condition for
    /// graceful shutdown.
    pub fn all_terminal(&self) -> bool {
        let c = self.counts();
        c.queued == 0 && c.running == 0 && c.interrupted == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_clean_run() {
        let store = JobStore::new();
        let id = store.create();
        assert_eq!(store.get(id).unwrap().state, JobState::Queued);
        assert_eq!(store.mark_running(id), Some(1));
        let r = store.get(id).unwrap();
        assert_eq!(r.state, JobState::Running);
        assert!(r.queue_wait.is_some());
        store.finish(id, Err("boom".into()));
        let r = store.get(id).unwrap();
        assert_eq!(r.state, JobState::Failed);
        assert_eq!(r.error.as_deref(), Some("boom"));
        assert!(r.wall.is_some());
        assert!(store.all_terminal());
    }

    #[test]
    fn wire_ids_round_trip() {
        let store = JobStore::new();
        let id = store.create();
        let wire = store.get(id).unwrap().wire_id();
        assert_eq!(JobStore::parse_wire_id(&wire), Some(id));
        assert_eq!(JobStore::parse_wire_id("nope"), None);
        assert_eq!(JobStore::parse_wire_id("j"), None);
    }

    #[test]
    fn counts_and_remove() {
        let store = JobStore::new();
        let a = store.create();
        let b = store.create();
        store.mark_running(b);
        assert_eq!(
            store.counts(),
            JobCounts {
                queued: 1,
                running: 1,
                ..JobCounts::default()
            }
        );
        assert!(!store.all_terminal());
        store.remove(a);
        store.finish(b, Err("x".into()));
        assert!(store.all_terminal());
    }

    #[test]
    fn concurrent_creates_never_lose_an_acknowledged_job_to_a_snapshot() {
        // Regression: create_job once appended `Created` outside the jobs
        // lock, so a concurrent finish's snapshot could capture a map
        // without the new job and truncate its WAL record away. With
        // snapshot_every=1 every finish snapshots, maximizing collisions.
        let _guard = crate::failpoint::exclusive();
        crate::failpoint::clear();
        let dir = std::env::temp_dir().join(format!(
            "confmask-store-race-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let (p, r) = Persistence::open(&dir, 1, 3).expect("open state dir");
        let store = Arc::new(JobStore::durable(Arc::new(p), &r));
        let acked = Arc::new(Mutex::new(Vec::new()));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let store = Arc::clone(&store);
                let acked = Arc::clone(&acked);
                std::thread::spawn(move || {
                    for i in 0..15u64 {
                        let id = store
                            .create_job(t << 32 | i, format!("job-{t}-{i}"), None, None)
                            .expect("create");
                        acked.lock().unwrap().push(id);
                        store.mark_running(id);
                        store.finish(id, Err("settled".into()));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(store);
        let (_p, rec) = Persistence::open(&dir, 1_000, 3).expect("recover");
        let recovered: std::collections::BTreeSet<u64> =
            rec.jobs.iter().map(|j| j.id).collect();
        for id in acked.lock().unwrap().iter() {
            assert!(recovered.contains(id), "acknowledged job j{id} was lost");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_transitions_are_refused_not_silent() {
        let store = JobStore::new();
        // Finishing a job that was removed: refused.
        let id = store.create();
        store.remove(id);
        store.finish(id, Err("late".into()));
        assert!(store.get(id).is_none(), "finish must not resurrect a job");
        // Starting a terminal job: refused, state unchanged.
        let id = store.create();
        store.mark_running(id);
        store.finish(id, Err("first".into()));
        assert_eq!(store.mark_running(id), None);
        assert_eq!(store.get(id).unwrap().state, JobState::Failed);
        // Double-finish: the first completion wins.
        store.finish(id, Err("second".into()));
        assert_eq!(store.get(id).unwrap().error.as_deref(), Some("first"));
    }
}
