//! A bounded MPMC FIFO job queue on `Mutex` + `Condvar`.
//!
//! Producers (HTTP handler threads) **never block**: a full queue is a
//! backpressure signal ([`PushError::Full`] → HTTP 429), not a place to
//! park connections. Consumers (workers) block in [`Bounded::pop`] until
//! an item arrives or the queue is closed *and* drained — so closing the
//! queue is exactly graceful-shutdown semantics: no new work, every item
//! already accepted is still handed to exactly one worker.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a non-blocking push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the item is handed back.
    Full(T),
    /// The queue was closed (shutdown in progress); the item is handed
    /// back.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The bounded queue. Shared by `Arc`; all methods take `&self`.
pub struct Bounded<T> {
    cap: usize,
    inner: Mutex<Inner<T>>,
    /// Signals consumers: an item was pushed, or the queue closed.
    available: Condvar,
}

impl<T> Bounded<T> {
    /// A queue holding at most `cap` items (`cap` ≥ 1 enforced).
    pub fn new(cap: usize) -> Self {
        Bounded {
            cap: cap.max(1),
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether [`Bounded::close`] was called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().expect("queue poisoned").closed
    }

    /// Enqueues `item` without blocking. Returns the queue depth after the
    /// push, or the item back when the queue is full or closed.
    pub fn push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.cap {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        drop(inner);
        self.available.notify_one();
        Ok(depth)
    }

    /// Dequeues the oldest item, blocking while the queue is open and
    /// empty. Returns `None` only when the queue is closed **and** fully
    /// drained — each pushed item is returned to exactly one caller.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.available.wait(inner).expect("queue poisoned");
        }
    }

    /// Closes the queue: subsequent pushes fail with [`PushError::Closed`],
    /// and consumers drain what is already queued, then get `None`.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("queue poisoned");
        inner.closed = true;
        drop(inner);
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::Arc;

    #[test]
    fn rejects_when_full_and_reports_depth() {
        let q = Bounded::new(2);
        assert_eq!(q.push(1), Ok(1));
        assert_eq!(q.push(2), Ok(2));
        assert_eq!(q.push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
        // Popping frees a slot.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.push(3), Ok(2));
    }

    #[test]
    fn fifo_order() {
        let q = Bounded::new(8);
        for i in 0..8 {
            q.push(i).unwrap();
        }
        q.close();
        let drained: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn close_rejects_new_pushes_but_drains_existing() {
        let q = Bounded::new(4);
        q.push("a").unwrap();
        q.close();
        assert_eq!(q.push("b"), Err(PushError::Closed("b")));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn capacity_is_at_least_one() {
        let q = Bounded::new(0);
        assert_eq!(q.capacity(), 1);
        assert_eq!(q.push(7), Ok(1));
        assert_eq!(q.push(8), Err(PushError::Full(8)));
    }

    /// Drain-on-shutdown with concurrent consumers: every accepted item is
    /// delivered to exactly one worker — none lost, none double-executed.
    #[test]
    fn concurrent_drain_loses_and_duplicates_nothing() {
        let q = Arc::new(Bounded::new(1024));
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(item) = q.pop() {
                        got.push(item);
                    }
                    got
                })
            })
            .collect();
        let mut accepted = Vec::new();
        for i in 0..1500u32 {
            if q.push(i).is_ok() {
                accepted.push(i);
            }
        }
        q.close();
        let mut seen: BTreeMap<u32, usize> = BTreeMap::new();
        for w in workers {
            for item in w.join().unwrap() {
                *seen.entry(item).or_default() += 1;
            }
        }
        assert_eq!(seen.len(), accepted.len(), "no accepted item may be lost");
        for (item, count) in &seen {
            assert_eq!(*count, 1, "item {item} executed {count} times");
            assert!(accepted.contains(item));
        }
    }

    /// A blocked consumer wakes on push and on close.
    #[test]
    fn blocked_pop_wakes_on_push_and_close() {
        let q = Arc::new(Bounded::<u32>::new(4));
        let qc = Arc::clone(&q);
        let consumer = std::thread::spawn(move || (qc.pop(), qc.pop()));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.push(9).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), (Some(9), None));
    }
}
