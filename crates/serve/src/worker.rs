//! The fixed worker pool: N threads popping jobs off the bounded queue and
//! running the self-healing anonymization pipeline.
//!
//! Per-job isolation rides the pipeline's existing thread-local span
//! capture: each attempt's `pipeline.stage.*` spans are captured on the
//! worker thread that ran it, so concurrent jobs never interleave their
//! stage samples (guarded by a regression test in `tests/`). A panicking
//! job is caught, recorded as `failed`, and the worker keeps serving.

use crate::failpoint;
use crate::queue::Bounded;
use crate::store::JobStore;
use confmask::{run_job_with, NetworkConfigs, Params, Strategy, Vendor};
use confmask_obs::{Span, SpanContext};
use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One accepted job as it sits in the queue.
#[derive(Debug)]
pub struct QueuedJob {
    /// Store id of the job.
    pub id: u64,
    /// The network to anonymize.
    pub configs: NetworkConfigs,
    /// Pipeline parameters (already defaulted by the wire decoder).
    pub params: Params,
    /// Dialect the artifacts are emitted in (resolved at submit time).
    pub vendor: Vendor,
    /// Anonymization strategy (resolved at submit time; defaults to
    /// `confmask`).
    pub strategy: Strategy,
    /// Trace context of the admitting request — the worker's spans are
    /// parented under the HTTP request span across the queue hop.
    pub ctx: SpanContext,
    /// When the job was enqueued (obs epoch µs), for the synthetic
    /// `serve.queue_wait` span no single thread lives through.
    pub enqueued_us: u64,
}

impl QueuedJob {
    /// An untraced job (the tests' shorthand).
    #[cfg(test)]
    pub fn untraced(id: u64, configs: NetworkConfigs, params: Params) -> QueuedJob {
        QueuedJob {
            id,
            configs,
            params,
            vendor: Vendor::Ios,
            strategy: Strategy::ConfMask,
            ctx: SpanContext::NONE,
            enqueued_us: confmask_obs::now_us(),
        }
    }
}

/// Handles of the spawned workers; join to wait for drain.
pub struct WorkerPool {
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Waits for every worker to exit (they do once the queue is closed
    /// and drained).
    pub fn join(self) {
        for h in self.handles {
            let _ = h.join();
        }
    }
}

/// Spawns `workers` threads serving `queue` into `store`. `job_timeout`
/// becomes the per-stage deadline of jobs that did not request their own
/// (stage granularity is the finest preemption point the pipeline has).
pub fn spawn(
    workers: usize,
    queue: Arc<Bounded<QueuedJob>>,
    store: Arc<JobStore>,
    job_timeout: Option<Duration>,
) -> WorkerPool {
    let handles = (0..workers.max(1))
        .map(|i| {
            let queue = Arc::clone(&queue);
            let store = Arc::clone(&store);
            std::thread::Builder::new()
                .name(format!("confmask-worker-{i}"))
                .spawn(move || worker_loop(&queue, &store, job_timeout))
                .expect("spawn worker thread")
        })
        .collect();
    WorkerPool { handles }
}

fn worker_loop(queue: &Bounded<QueuedJob>, store: &JobStore, job_timeout: Option<Duration>) {
    while let Some(job) = queue.pop() {
        confmask_obs::gauge_set("serve.queue_depth", queue.len() as f64);
        // A refused transition (job removed, or already finished by an
        // earlier run that recovery requeued anyway) drops the entry —
        // exactly-once completion over at-least-once delivery.
        if store.mark_running(job.id).is_none() {
            continue;
        }
        if failpoint::check("worker.run") == Some(failpoint::Action::Vanish) {
            // Injected worker death: the thread exits mid-job, leaving
            // the job `running` with no outcome — what a crashed daemon
            // leaves in its WAL for recovery to classify as interrupted.
            return;
        }
        let mut params = job.params;
        if params.stage_deadline.is_none() {
            params.stage_deadline = job_timeout;
        }
        // The queue hop: a synthetic span with explicit timing (enqueue →
        // pickup), since neither the accept thread nor this one lives
        // through the whole wait.
        let picked_us = confmask_obs::now_us();
        let queue_wait =
            Duration::from_micros(picked_us.saturating_sub(job.enqueued_us));
        confmask_obs::record_span("serve.queue_wait", job.ctx, job.enqueued_us, queue_wait);
        confmask_obs::observe("serve.queue_wait_ms", queue_wait.as_millis() as u64);
        // The worker span joins the admitting request's trace; everything
        // the pipeline opens underneath (pipeline.anonymize, stage spans)
        // inherits the trace id through the thread-local.
        let worker_span = Span::child_of("serve.worker", job.ctx);
        let started = Instant::now();
        let run_span = confmask_obs::span("serve.run");
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_job_with(&job.configs, &params, job.vendor, job.strategy)
        }));
        confmask_obs::observe("serve.run_ms", run_span.finish().as_millis() as u64);
        let wall = started.elapsed();
        let outcome = match result {
            Ok(Ok(outcome)) => {
                confmask_obs::counter_add("serve.jobs_done", 1);
                confmask_obs::observe("serve.job_wall_ms", wall.as_millis() as u64);
                Ok(outcome)
            }
            Ok(Err(e)) => {
                confmask_obs::counter_add("serve.jobs_failed", 1);
                confmask_obs::warn!("serve.worker", "job j{} failed: {e}", job.id);
                Err(e.to_string())
            }
            Err(panic) => {
                confmask_obs::counter_add("serve.jobs_failed", 1);
                let message = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "unknown panic".to_string());
                confmask_obs::error!("serve.worker", "job j{} panicked: {message}", job.id);
                Err(format!("worker panicked: {message}"))
            }
        };
        let persist_span = confmask_obs::span("serve.persist");
        store.finish(job.id, outcome);
        confmask_obs::observe("serve.persist_ms", persist_span.finish().as_millis() as u64);
        worker_span.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confmask_netgen::smallnets::example_network;

    #[test]
    fn workers_drain_the_queue_and_record_outcomes() {
        // Workers traverse the `worker.run` fail point; serialize with
        // tests that arm it.
        let _guard = failpoint::exclusive();
        failpoint::clear();
        let queue = Arc::new(Bounded::new(8));
        let store = Arc::new(JobStore::new());
        let net = example_network();
        let ids: Vec<u64> = (0..3)
            .map(|i| {
                let id = store.create();
                queue
                    .push(QueuedJob::untraced(
                        id,
                        net.clone(),
                        Params::new(3, 2).with_seed(i),
                    ))
                    .unwrap();
                id
            })
            .collect();
        let pool = spawn(2, Arc::clone(&queue), Arc::clone(&store), None);
        queue.close();
        pool.join();
        for id in ids {
            let r = store.get(id).unwrap();
            assert!(r.state.has_artifacts(), "job {id}: {:?}", r.state);
            assert!(r.outcome.is_some());
            assert!(r.wall.is_some());
        }
        assert!(store.all_terminal());
    }

    #[test]
    fn a_failing_job_is_recorded_not_propagated() {
        let _guard = failpoint::exclusive();
        failpoint::clear();
        let queue = Arc::new(Bounded::new(2));
        let store = Arc::new(JobStore::new());
        // The bad gadget has no BGP equilibrium: the pipeline fails fatally.
        let id = store.create();
        queue
            .push(QueuedJob::untraced(
                id,
                confmask_netgen::smallnets::bad_gadget(),
                Params::new(3, 2),
            ))
            .unwrap();
        let pool = spawn(1, Arc::clone(&queue), Arc::clone(&store), None);
        queue.close();
        pool.join();
        let r = store.get(id).unwrap();
        assert_eq!(r.state, crate::store::JobState::Failed);
        assert!(r.error.is_some());
    }
}
