//! Route dispatch: maps a parsed request onto the `/v1` JSON API.

use crate::http::{Request, Response};
use crate::queue::PushError;
use crate::store::JobStore;
use crate::wire;
use crate::worker::QueuedJob;
use crate::ServerState;
use confmask_obs::SpanContext;
use std::fmt::Write as _;
use std::sync::atomic::Ordering;

/// What a request resource is, for the per-endpoint latency histograms.
/// Metric names must be `'static`, so the route set is a closed enum of
/// names (an `other` bucket catches 404s and probes).
pub fn endpoint_metric(method: &str, path: &str) -> &'static str {
    match (method, path) {
        ("POST", "/v1/jobs") => "serve.http.submit_ms",
        ("GET", "/healthz") => "serve.http.health_ms",
        ("GET", "/metrics" | "/metrics-json") => "serve.http.metrics_ms",
        ("POST", "/v1/shutdown") => "serve.http.shutdown_ms",
        ("GET", p) if p.starts_with("/v1/jobs/") && p.ends_with("/trace") => {
            "serve.http.trace_ms"
        }
        ("GET", p) if p.starts_with("/v1/jobs/") && p.ends_with("/artifacts") => {
            "serve.http.artifacts_ms"
        }
        ("GET", p) if p.starts_with("/v1/jobs/") => "serve.http.status_ms",
        _ => "serve.http.other_ms",
    }
}

/// Dispatches one request. Every path returns a response; unknown paths
/// are 404, known paths with the wrong method are 405. `ctx` is the
/// request span's trace context, handed into the job queue on submission.
pub fn route(req: &Request, state: &ServerState, ctx: SpanContext) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/jobs") => submit(req, state, ctx),
        ("GET", "/healthz") => health(state),
        ("GET", "/metrics") => Response::text(200, confmask_obs::report().to_prometheus()),
        ("GET", "/metrics-json") => Response::json(200, confmask_obs::report().to_json()),
        ("POST", "/v1/shutdown") => shutdown(state),
        (method, path) if path.starts_with("/v1/jobs/") => {
            let rest = &path["/v1/jobs/".len()..];
            let (id_part, kind) = if let Some(id) = rest.strip_suffix("/artifacts") {
                (id, JobResource::Artifacts)
            } else if let Some(id) = rest.strip_suffix("/trace") {
                (id, JobResource::Trace)
            } else {
                (rest, JobResource::Status)
            };
            let Some(id) = JobStore::parse_wire_id(id_part) else {
                return Response::error(404, &format!("no such job '{id_part}'"));
            };
            if method != "GET" {
                return Response::error(405, "job resources are read-only");
            }
            match kind {
                JobResource::Status => job_status(id, state),
                JobResource::Artifacts => job_artifacts(id, state),
                JobResource::Trace => job_trace(id, state),
            }
        }
        (_, "/v1/jobs" | "/healthz" | "/metrics" | "/metrics-json" | "/v1/shutdown") => {
            Response::error(405, "method not allowed")
        }
        (_, path) => Response::error(404, &format!("no such resource '{path}'")),
    }
}

/// The three read-only job sub-resources.
enum JobResource {
    Status,
    Artifacts,
    Trace,
}

/// `POST /v1/jobs`: parse the bundle, create the record, enqueue. A full
/// queue is backpressure (429 + `Retry-After`), a closed queue means
/// shutdown is in progress (503).
fn submit(req: &Request, state: &ServerState, ctx: SpanContext) -> Response {
    if state.shutdown.load(Ordering::Acquire) {
        return Response::error(503, "shutting down");
    }
    let sub = match wire::decode_submit(&req.body) {
        Ok(sub) => sub,
        Err(message) => return Response::error(400, &message),
    };
    // Journal the canonical (re-encoded) submission before acknowledging:
    // an accepted job must survive a crash, so if the WAL refuses the
    // record the submission is refused too.
    let key = confmask::content_key_with(&sub.configs, &sub.params, sub.vendor, sub.strategy);
    let canonical = wire::encode_submit(&sub.configs, &sub.params, sub.vendor, sub.strategy);
    let id = match state
        .store
        .create_job(key, canonical, Some(sub.vendor), Some(sub.strategy))
    {
        Ok(id) => id,
        Err(e) => {
            confmask_obs::counter_add("serve.jobs_rejected", 1);
            confmask_obs::error!("serve", "job not accepted: journal write failed: {e}");
            return Response::error(500, "job not accepted: state journal unavailable");
        }
    };
    state.store.set_trace(id, ctx.trace);
    // Claim the trace-index slot *before* the queue push: a worker can pop
    // the job and finish spans instantly, and an unretained trace would
    // drop them. Only accepted submissions keep their slot (released again
    // below on 429/503), so polls, probes, and rejected floods never evict
    // a live job's trace.
    confmask_obs::retain_trace(ctx.trace);
    let strategy = sub.strategy;
    let job = QueuedJob {
        id,
        configs: sub.configs,
        params: sub.params,
        vendor: sub.vendor,
        strategy,
        ctx,
        enqueued_us: confmask_obs::now_us(),
    };
    match state.queue.push(job) {
        Ok(depth) => {
            confmask_obs::counter_add("serve.jobs_accepted", 1);
            confmask_obs::gauge_set("serve.queue_depth", depth as f64);
            let wire_id = format!("j{id}");
            confmask_obs::info!(
                "serve",
                "accepted job {wire_id} (strategy {strategy}, queue depth {depth})"
            );
            // Named so the access log can report the resolved strategy.
            Response::json(202, wire::encode_job_created(&wire_id))
                .with_header("X-Strategy", strategy.name())
        }
        Err(PushError::Full(_)) => {
            state.store.remove(id);
            confmask_obs::release_trace(ctx.trace);
            confmask_obs::counter_add("serve.jobs_rejected", 1);
            Response::error(
                429,
                &format!("queue full (capacity {})", state.queue.capacity()),
            )
            .with_header("Retry-After", "1")
        }
        Err(PushError::Closed(_)) => {
            state.store.remove(id);
            confmask_obs::release_trace(ctx.trace);
            confmask_obs::counter_add("serve.jobs_rejected", 1);
            Response::error(503, "shutting down")
        }
    }
}

/// `GET /v1/jobs/{id}`.
fn job_status(id: u64, state: &ServerState) -> Response {
    match state.store.get(id) {
        Some(record) => Response::json(200, wire::encode_status(&record)),
        None => Response::error(404, &format!("no such job 'j{id}'")),
    }
}

/// `GET /v1/jobs/{id}/artifacts`: 409 until the job finishes successfully.
fn job_artifacts(id: u64, state: &ServerState) -> Response {
    let Some(record) = state.store.get(id) else {
        return Response::error(404, &format!("no such job 'j{id}'"));
    };
    match &record.outcome {
        Some(outcome) if record.state.has_artifacts() => Response::json(
            200,
            wire::encode_artifacts(
                &record.wire_id(),
                &outcome.artifacts,
                record.vendor,
                record.strategy,
            ),
        ),
        _ => Response::error(
            409,
            &format!(
                "job 'j{id}' is {}; artifacts exist only for done/degraded jobs",
                record.state.name()
            ),
        ),
    }
}

/// `GET /v1/jobs/{id}/trace`: the assembled span tree of the request that
/// admitted (or requeued) the job. 404 for unknown jobs, 409 when no
/// spans are available — the job predates this process (recovered but not
/// yet re-run), its first span has not finished yet, or its trace aged
/// out of the bounded index.
fn job_trace(id: u64, state: &ServerState) -> Response {
    let Some(record) = state.store.get(id) else {
        return Response::error(404, &format!("no such job 'j{id}'"));
    };
    if record.trace == 0 {
        return Response::error(
            409,
            &format!("job 'j{id}' has no trace in this process"),
        );
    }
    let spans = confmask_obs::trace_spans(record.trace);
    if spans.is_empty() {
        // The submitting request's own span is only indexed after its
        // response is written, so a trace GET racing a fresh 202 can see a
        // retained-but-empty trace — transient, unlike an eviction.
        let message = if confmask_obs::trace_known(record.trace) {
            format!("trace for job 'j{id}' has no spans recorded yet; retry shortly")
        } else {
            format!("trace for job 'j{id}' was evicted from the trace index")
        };
        return Response::error(409, &message);
    }
    Response::json(200, wire::encode_trace(&record, &spans))
}

/// `GET /healthz`: liveness plus a queue/worker/job snapshot.
fn health(state: &ServerState) -> Response {
    let counts = state.store.counts();
    let mut body = String::from("{");
    let _ = write!(
        body,
        "\"status\": {}, \"workers\": {}, \"queue_depth\": {}, \"queue_capacity\": {}, ",
        if state.shutdown.load(Ordering::Acquire) {
            "\"draining\""
        } else {
            "\"ok\""
        },
        state.workers,
        state.queue.len(),
        state.queue.capacity()
    );
    let _ = writeln!(
        body,
        "\"jobs\": {{\"queued\": {}, \"running\": {}, \"interrupted\": {}, \"done\": {}, \
         \"degraded\": {}, \"failed\": {}}}}}",
        counts.queued,
        counts.running,
        counts.interrupted,
        counts.done,
        counts.degraded,
        counts.failed
    );
    Response::json(200, body)
}

/// `POST /v1/shutdown`: stop accepting, let workers drain. The accept
/// loop is woken by the connection handler after the response is written.
fn shutdown(state: &ServerState) -> Response {
    let first = !state.shutdown.swap(true, Ordering::AcqRel);
    state.queue.close();
    if first {
        confmask_obs::info!(
            "serve",
            "shutdown requested: draining {} queued job(s)",
            state.queue.len()
        );
    }
    Response::json(202, "{\"state\": \"draining\"}\n")
}
