//! Route dispatch: maps a parsed request onto the `/v1` JSON API.

use crate::http::{Request, Response};
use crate::queue::PushError;
use crate::store::JobStore;
use crate::wire;
use crate::worker::QueuedJob;
use crate::ServerState;
use std::fmt::Write as _;
use std::sync::atomic::Ordering;

/// Dispatches one request. Every path returns a response; unknown paths
/// are 404, known paths with the wrong method are 405.
pub fn route(req: &Request, state: &ServerState) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/jobs") => submit(req, state),
        ("GET", "/healthz") => health(state),
        ("GET", "/metrics") => Response::text(200, confmask_obs::report().to_prometheus()),
        ("GET", "/metrics-json") => Response::json(200, confmask_obs::report().to_json()),
        ("POST", "/v1/shutdown") => shutdown(state),
        (method, path) if path.starts_with("/v1/jobs/") => {
            let rest = &path["/v1/jobs/".len()..];
            let (id_part, artifacts) = match rest.strip_suffix("/artifacts") {
                Some(id) => (id, true),
                None => (rest, false),
            };
            let Some(id) = JobStore::parse_wire_id(id_part) else {
                return Response::error(404, &format!("no such job '{id_part}'"));
            };
            if method != "GET" {
                return Response::error(405, "job resources are read-only");
            }
            if artifacts {
                job_artifacts(id, state)
            } else {
                job_status(id, state)
            }
        }
        (_, "/v1/jobs" | "/healthz" | "/metrics" | "/metrics-json" | "/v1/shutdown") => {
            Response::error(405, "method not allowed")
        }
        (_, path) => Response::error(404, &format!("no such resource '{path}'")),
    }
}

/// `POST /v1/jobs`: parse the bundle, create the record, enqueue. A full
/// queue is backpressure (429 + `Retry-After`), a closed queue means
/// shutdown is in progress (503).
fn submit(req: &Request, state: &ServerState) -> Response {
    if state.shutdown.load(Ordering::Acquire) {
        return Response::error(503, "shutting down");
    }
    let sub = match wire::decode_submit(&req.body) {
        Ok(sub) => sub,
        Err(message) => return Response::error(400, &message),
    };
    // Journal the canonical (re-encoded) submission before acknowledging:
    // an accepted job must survive a crash, so if the WAL refuses the
    // record the submission is refused too.
    let key = confmask::content_key(&sub.configs, &sub.params);
    let canonical = wire::encode_submit(&sub.configs, &sub.params);
    let id = match state.store.create_job(key, canonical) {
        Ok(id) => id,
        Err(e) => {
            confmask_obs::counter_add("serve.jobs_rejected", 1);
            confmask_obs::error!("serve", "job not accepted: journal write failed: {e}");
            return Response::error(500, "job not accepted: state journal unavailable");
        }
    };
    let job = QueuedJob {
        id,
        configs: sub.configs,
        params: sub.params,
    };
    match state.queue.push(job) {
        Ok(depth) => {
            confmask_obs::counter_add("serve.jobs_accepted", 1);
            confmask_obs::gauge_set("serve.queue_depth", depth as f64);
            let wire_id = format!("j{id}");
            confmask_obs::info!("serve", "accepted job {wire_id} (queue depth {depth})");
            Response::json(202, wire::encode_job_created(&wire_id))
        }
        Err(PushError::Full(_)) => {
            state.store.remove(id);
            confmask_obs::counter_add("serve.jobs_rejected", 1);
            Response::error(
                429,
                &format!("queue full (capacity {})", state.queue.capacity()),
            )
            .with_header("Retry-After", "1")
        }
        Err(PushError::Closed(_)) => {
            state.store.remove(id);
            confmask_obs::counter_add("serve.jobs_rejected", 1);
            Response::error(503, "shutting down")
        }
    }
}

/// `GET /v1/jobs/{id}`.
fn job_status(id: u64, state: &ServerState) -> Response {
    match state.store.get(id) {
        Some(record) => Response::json(200, wire::encode_status(&record)),
        None => Response::error(404, &format!("no such job 'j{id}'")),
    }
}

/// `GET /v1/jobs/{id}/artifacts`: 409 until the job finishes successfully.
fn job_artifacts(id: u64, state: &ServerState) -> Response {
    let Some(record) = state.store.get(id) else {
        return Response::error(404, &format!("no such job 'j{id}'"));
    };
    match &record.outcome {
        Some(outcome) if record.state.has_artifacts() => Response::json(
            200,
            wire::encode_artifacts(&record.wire_id(), &outcome.artifacts),
        ),
        _ => Response::error(
            409,
            &format!(
                "job 'j{id}' is {}; artifacts exist only for done/degraded jobs",
                record.state.name()
            ),
        ),
    }
}

/// `GET /healthz`: liveness plus a queue/worker/job snapshot.
fn health(state: &ServerState) -> Response {
    let counts = state.store.counts();
    let mut body = String::from("{");
    let _ = write!(
        body,
        "\"status\": {}, \"workers\": {}, \"queue_depth\": {}, \"queue_capacity\": {}, ",
        if state.shutdown.load(Ordering::Acquire) {
            "\"draining\""
        } else {
            "\"ok\""
        },
        state.workers,
        state.queue.len(),
        state.queue.capacity()
    );
    let _ = writeln!(
        body,
        "\"jobs\": {{\"queued\": {}, \"running\": {}, \"interrupted\": {}, \"done\": {}, \
         \"degraded\": {}, \"failed\": {}}}}}",
        counts.queued,
        counts.running,
        counts.interrupted,
        counts.done,
        counts.degraded,
        counts.failed
    );
    Response::json(200, body)
}

/// `POST /v1/shutdown`: stop accepting, let workers drain. The accept
/// loop is woken by the connection handler after the response is written.
fn shutdown(state: &ServerState) -> Response {
    let first = !state.shutdown.swap(true, Ordering::AcqRel);
    state.queue.close();
    if first {
        confmask_obs::info!(
            "serve",
            "shutdown requested: draining {} queued job(s)",
            state.queue.len()
        );
    }
    Response::json(202, "{\"state\": \"draining\"}\n")
}
