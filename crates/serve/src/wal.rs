//! The append-only write-ahead log: length-prefixed, checksummed records.
//!
//! ## On-disk format
//!
//! ```text
//! file   := MAGIC record*
//! MAGIC  := "CMWAL01\n"                      (8 bytes)
//! record := len:u32le kind:u8 payload[len] checksum:u64le
//! ```
//!
//! `len` counts the payload bytes only; `checksum` is FNV-1a 64 over
//! `kind` followed by the payload. A reader accepts the **longest valid
//! prefix**: the first record whose length runs past the file, whose
//! checksum fails, or whose kind is unknown ends the scan, and everything
//! before it is intact (a torn tail after a crash loses at most the
//! record being written — that is the durability contract [`WalWriter`]
//! provides by fsyncing each append).
//!
//! Encoding and scanning are pure byte-level functions so property tests
//! can exercise truncation and corruption without touching a filesystem.

use crate::failpoint::{self, Action};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, Write};
use std::path::{Path, PathBuf};

/// File magic: identifies a ConfMask WAL, version 01.
pub const MAGIC: &[u8; 8] = b"CMWAL01\n";

/// Per-record framing overhead: length prefix + kind + checksum.
pub const RECORD_OVERHEAD: usize = 4 + 1 + 8;

/// Largest accepted payload (a corrupted length prefix must not make the
/// reader allocate gigabytes).
pub const MAX_PAYLOAD: usize = 64 << 20;

/// Record kinds, in wire order. Unknown kinds end a scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Kind {
    /// A job was accepted: payload carries the canonical submission.
    Created = 1,
    /// A worker started (or restarted) the job.
    Running = 2,
    /// The job reached a terminal state.
    Finished = 3,
    /// The artifact bundle of a successful job.
    Artifacts = 4,
    /// The job record was withdrawn (queue refused it after creation).
    Removed = 5,
    /// Recovery requeued an interrupted job.
    Requeued = 6,
    /// A full store snapshot (the single record of a snapshot file).
    Snapshot = 7,
}

impl Kind {
    /// Parses a wire kind byte.
    pub fn from_u8(b: u8) -> Option<Kind> {
        Some(match b {
            1 => Kind::Created,
            2 => Kind::Running,
            3 => Kind::Finished,
            4 => Kind::Artifacts,
            5 => Kind::Removed,
            6 => Kind::Requeued,
            7 => Kind::Snapshot,
            _ => return None,
        })
    }
}

/// One decoded record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// The record kind.
    pub kind: Kind,
    /// The payload bytes (JSON in this crate's usage).
    pub payload: Vec<u8>,
}

/// FNV-1a 64-bit over `bytes`, continuing from `state` (pass
/// [`FNV_OFFSET`] to start).
pub fn fnv1a(bytes: &[u8], mut state: u64) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(0x0000_0100_0000_01B3);
    }
    state
}

/// FNV-1a offset basis.
pub const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

fn record_checksum(kind: u8, payload: &[u8]) -> u64 {
    fnv1a(payload, fnv1a(&[kind], FNV_OFFSET))
}

/// Encodes one record into its framed wire form.
pub fn encode_record(kind: Kind, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_OVERHEAD + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.push(kind as u8);
    out.extend_from_slice(payload);
    out.extend_from_slice(&record_checksum(kind as u8, payload).to_le_bytes());
    out
}

/// What a scan of a WAL body found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scan {
    /// Every intact record, in append order.
    pub records: Vec<Record>,
    /// Bytes of the valid prefix (records only, magic excluded).
    pub valid_len: usize,
    /// Bytes discarded after the valid prefix (torn tail / corruption).
    pub discarded: usize,
}

/// Scans a WAL *body* (everything after the magic), accepting the longest
/// valid prefix. Never panics, whatever the input.
pub fn scan_body(body: &[u8]) -> Scan {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        let rest = &body[pos..];
        if rest.len() < RECORD_OVERHEAD {
            break;
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        if len > MAX_PAYLOAD || rest.len() < RECORD_OVERHEAD + len {
            break;
        }
        let kind_byte = rest[4];
        let payload = &rest[5..5 + len];
        let mut checksum = [0u8; 8];
        checksum.copy_from_slice(&rest[5 + len..5 + len + 8]);
        if u64::from_le_bytes(checksum) != record_checksum(kind_byte, payload) {
            break;
        }
        let Some(kind) = Kind::from_u8(kind_byte) else {
            break;
        };
        records.push(Record {
            kind,
            payload: payload.to_vec(),
        });
        pos += RECORD_OVERHEAD + len;
    }
    Scan {
        records,
        valid_len: pos,
        discarded: body.len() - pos,
    }
}

/// Reads and scans a WAL file. A missing file is an empty log; a file
/// without the magic is treated as fully discarded (zero valid records),
/// not an error — recovery must always make progress.
pub fn read_wal(path: &Path) -> io::Result<Scan> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Ok(Scan {
                records: Vec::new(),
                valid_len: 0,
                discarded: 0,
            })
        }
        Err(e) => return Err(e),
    }
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Ok(Scan {
            records: Vec::new(),
            valid_len: 0,
            discarded: bytes.len(),
        });
    }
    Ok(scan_body(&bytes[MAGIC.len()..]))
}

/// The appender: one open file, fsync per record, fail-point aware.
///
/// After an injected crash the writer is *halted*: the file stays exactly
/// as the crash left it and every later call silently does nothing, which
/// is what the disk of a killed process looks like to the next boot.
pub struct WalWriter {
    file: File,
    path: PathBuf,
    halted: bool,
    appends: u64,
}

impl WalWriter {
    /// Opens `path` for appending, writing the magic if the file is new,
    /// rewriting it if a crash tore or corrupted the header, or
    /// truncating a file whose valid prefix ends before its tail
    /// (dropping a torn record once, at open, keeps every later append
    /// contiguous with the valid prefix).
    pub fn open(path: &Path, valid_len: usize) -> io::Result<WalWriter> {
        // Append mode: every write lands at the current end of file, so
        // reopening an existing log continues it rather than overwriting
        // the magic at offset zero.
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(path)?;
        let end = file.metadata()?.len();
        if end == 0 {
            let mut f = &file;
            f.write_all(MAGIC)?;
            f.sync_all()?;
        } else {
            let mut f = &file;
            let mut header = [0u8; 8];
            f.seek(io::SeekFrom::Start(0))?;
            let header_ok = f.read_exact(&mut header).is_ok() && &header == MAGIC;
            if !header_ok {
                // A torn or corrupted magic makes the whole file
                // unreadable (readers discard a magic-less log), so
                // appending behind it would silently lose every record of
                // the new epoch. Start the file over.
                file.set_len(0)?;
                f.write_all(MAGIC)?;
                f.sync_all()?;
                confmask_obs::counter_add("serve.wal.header_repairs", 1);
                confmask_obs::warn!(
                    "serve.wal",
                    "repaired torn/corrupt header at {}; prior epoch discarded",
                    path.display()
                );
            } else {
                let valid_end = (MAGIC.len() + valid_len) as u64;
                if valid_end < end {
                    file.set_len(valid_end)?;
                    file.sync_all()?;
                    confmask_obs::counter_add("serve.wal.torn_records", 1);
                }
            }
        }
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            halted: false,
            appends: 0,
        })
    }

    /// Whether an injected crash froze this writer.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Freezes the writer as an injected crash would (fail-point sites
    /// outside the append path, e.g. mid-snapshot).
    pub fn halt(&mut self) {
        self.halted = true;
    }

    /// Records appended through this writer (fail-point sweep sizing).
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Appends one record and fsyncs. Consults the `wal.append` fail
    /// point; injected errors surface as `Err`, injected crashes halt the
    /// writer (the caller observes `Ok` for `sync`, `Err` otherwise —
    /// exactly the ambiguity a real crash leaves).
    pub fn append(&mut self, kind: Kind, payload: &[u8]) -> io::Result<()> {
        if self.halted {
            return Ok(());
        }
        let action = failpoint::check("wal.append");
        match action {
            Some(Action::IoError) | Some(Action::DiskFull) => {
                return Err(failpoint::injected_error(action.unwrap()));
            }
            Some(Action::CrashBefore) => {
                self.halted = true;
                return Err(io::Error::other("injected crash before append"));
            }
            _ => {}
        }
        let bytes = encode_record(kind, payload);
        if action == Some(Action::Torn) {
            // A torn write: half the record reaches the disk, then the
            // process dies. `max(1)` so even a tiny record is actually
            // torn rather than skipped.
            let half = (bytes.len() / 2).max(1);
            let _ = self.file.write_all(&bytes[..half]);
            let _ = self.file.sync_all();
            self.halted = true;
            return Err(io::Error::other("injected torn write"));
        }
        self.file.write_all(&bytes)?;
        self.file.sync_all()?;
        self.appends += 1;
        confmask_obs::counter_add("serve.wal.appends", 1);
        confmask_obs::counter_add("serve.wal.bytes", bytes.len() as u64);
        if action == Some(Action::CrashAfter) {
            self.halted = true;
        }
        Ok(())
    }

    /// Truncates the log to empty (post-snapshot compaction). Honors the
    /// halted state like any other write.
    pub fn reset(&mut self) -> io::Result<()> {
        if self.halted {
            return Ok(());
        }
        self.file.set_len(MAGIC.len() as u64)?;
        self.file.sync_all()?;
        Ok(())
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "confmask-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    fn body(records: &[(Kind, &[u8])]) -> Vec<u8> {
        let mut out = Vec::new();
        for (kind, payload) in records {
            out.extend_from_slice(&encode_record(*kind, payload));
        }
        out
    }

    #[test]
    fn encode_scan_round_trip() {
        let bytes = body(&[
            (Kind::Created, br#"{"id":1}"#),
            (Kind::Running, b""),
            (Kind::Finished, br#"{"state":"done"}"#),
        ]);
        let scan = scan_body(&bytes);
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.valid_len, bytes.len());
        assert_eq!(scan.discarded, 0);
        assert_eq!(scan.records[0].kind, Kind::Created);
        assert_eq!(scan.records[0].payload, br#"{"id":1}"#);
        // Re-encoding the scan reproduces the input byte-exactly.
        let reencoded: Vec<u8> = scan
            .records
            .iter()
            .flat_map(|r| encode_record(r.kind, &r.payload))
            .collect();
        assert_eq!(reencoded, bytes);
    }

    #[test]
    fn torn_tail_recovers_the_valid_prefix() {
        let bytes = body(&[(Kind::Created, b"abc"), (Kind::Finished, b"defgh")]);
        let first_len = RECORD_OVERHEAD + 3;
        for cut in first_len..bytes.len() {
            let scan = scan_body(&bytes[..cut]);
            assert_eq!(scan.records.len(), 1, "cut at {cut}");
            assert_eq!(scan.valid_len, first_len);
            assert_eq!(scan.discarded, cut - first_len);
        }
    }

    #[test]
    fn corruption_ends_the_scan_without_panicking() {
        let clean = body(&[(Kind::Created, b"abc"), (Kind::Finished, b"def")]);
        for i in 0..clean.len() {
            let mut corrupt = clean.clone();
            corrupt[i] ^= 0x40;
            let scan = scan_body(&corrupt); // must not panic
            assert!(scan.records.len() <= 2);
            assert!(scan.valid_len + scan.discarded == corrupt.len());
        }
        // A length prefix pointing past the buffer is a torn tail.
        let mut huge = clean;
        huge[0] = 0xFF;
        huge[1] = 0xFF;
        huge[2] = 0xFF;
        huge[3] = 0x7F;
        assert_eq!(scan_body(&huge).records.len(), 0);
    }

    #[test]
    fn unknown_kind_ends_the_scan() {
        let mut bytes = body(&[(Kind::Created, b"x")]);
        // Hand-frame a record with kind 200 and a valid checksum.
        let payload = b"y";
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.push(200);
        bytes.extend_from_slice(payload);
        bytes.extend_from_slice(&record_checksum(200, payload).to_le_bytes());
        let scan = scan_body(&bytes);
        assert_eq!(scan.records.len(), 1);
        assert!(scan.discarded > 0);
    }

    #[test]
    fn writer_appends_survive_reopen() {
        // Appending traverses the `wal.append` fail point; serialize with
        // tests that arm it.
        let _guard = crate::failpoint::exclusive();
        crate::failpoint::clear();
        let path = tmp("reopen");
        let mut w = WalWriter::open(&path, 0).unwrap();
        w.append(Kind::Created, br#"{"id":1}"#).unwrap();
        w.append(Kind::Running, br#"{"id":1,"attempt":1}"#).unwrap();
        drop(w);
        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.discarded, 0);
        // Append more after reopening at the valid prefix.
        let mut w = WalWriter::open(&path, scan.valid_len).unwrap();
        w.append(Kind::Finished, b"{}").unwrap();
        drop(w);
        assert_eq!(read_wal(&path).unwrap().records.len(), 3);
    }

    #[test]
    fn reopen_truncates_a_torn_tail() {
        let _guard = crate::failpoint::exclusive();
        crate::failpoint::clear();
        let path = tmp("torn");
        let mut w = WalWriter::open(&path, 0).unwrap();
        w.append(Kind::Created, b"abc").unwrap();
        drop(w);
        // Simulate a crash mid-append: garbage tail bytes.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[9, 0, 0, 0, 1, 42]);
        std::fs::write(&path, &bytes).unwrap();
        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert!(scan.discarded > 0);
        let mut w = WalWriter::open(&path, scan.valid_len).unwrap();
        w.append(Kind::Finished, b"def").unwrap();
        drop(w);
        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.records.len(), 2, "tail dropped, appends contiguous");
        assert_eq!(scan.discarded, 0);
    }

    #[test]
    fn torn_magic_is_repaired_so_later_appends_survive() {
        let _guard = crate::failpoint::exclusive();
        crate::failpoint::clear();
        // A crash tore the initial magic write: fewer than 8 bytes exist.
        let path = tmp("torn-magic");
        std::fs::write(&path, &MAGIC[..3]).unwrap();
        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.records.len(), 0);
        assert_eq!(scan.valid_len, 0);
        let mut w = WalWriter::open(&path, scan.valid_len).unwrap();
        w.append(Kind::Created, b"fresh").unwrap();
        drop(w);
        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.records.len(), 1, "append after repair is readable");
        assert_eq!(scan.records[0].payload, b"fresh");
        assert_eq!(scan.discarded, 0);
    }

    #[test]
    fn corrupt_magic_is_repaired_so_later_appends_survive() {
        let _guard = crate::failpoint::exclusive();
        crate::failpoint::clear();
        // The header bytes exist but are garbage (e.g. a misdirected
        // write): the old epoch is unreadable and must not poison the new.
        let path = tmp("bad-magic");
        let mut bytes = b"NOTMAGIC".to_vec();
        bytes.extend_from_slice(&encode_record(Kind::Created, b"old"));
        std::fs::write(&path, &bytes).unwrap();
        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.records.len(), 0, "magic-less file is fully discarded");
        let mut w = WalWriter::open(&path, scan.valid_len).unwrap();
        w.append(Kind::Created, b"new-epoch").unwrap();
        drop(w);
        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].payload, b"new-epoch");
        assert_eq!(scan.discarded, 0);
    }

    #[test]
    fn missing_file_is_an_empty_log() {
        let scan = read_wal(Path::new("/definitely/not/here.wal")).unwrap();
        assert!(scan.records.is_empty());
    }

    #[test]
    fn injected_faults_follow_the_schedule() {
        let _guard = crate::failpoint::exclusive();
        crate::failpoint::clear();
        let path = tmp("inject");
        let mut w = WalWriter::open(&path, 0).unwrap();
        crate::failpoint::arm("wal.append", Action::IoError, 2);
        w.append(Kind::Created, b"one").unwrap();
        let err = w.append(Kind::Created, b"two").unwrap_err();
        assert!(err.to_string().contains("injected"));
        assert!(!w.halted(), "an I/O error does not kill the process");
        w.append(Kind::Created, b"three").unwrap();

        crate::failpoint::arm("wal.append", Action::Torn, 1);
        assert!(w.append(Kind::Created, b"four").is_err());
        assert!(w.halted(), "a torn write is a crash");
        // Halted writer: every later operation is silently ignored.
        w.append(Kind::Created, b"five").unwrap();
        crate::failpoint::clear();
        drop(w);

        let scan = read_wal(&path).unwrap();
        let payloads: Vec<&[u8]> =
            scan.records.iter().map(|r| r.payload.as_slice()).collect();
        assert_eq!(payloads, vec![&b"one"[..], &b"three"[..]]);
        assert!(scan.discarded > 0, "the torn half-record is on disk");
    }
}
