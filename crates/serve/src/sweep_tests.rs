//! The crash-point sweep: a scripted store workload is run once cleanly
//! to count its WAL appends, then re-run with a fault injected at *every*
//! append (and every snapshot step, and a vanishing worker), each time
//! recovering from the surviving state directory and asserting the
//! exactly-once invariants:
//!
//! * **no job lost** — every acknowledged submission is recovered;
//! * **none invented** — recovery never surfaces an unacknowledged job;
//! * **none double-completed** — a recovered terminal state always equals
//!   the completion the live daemon recorded, never a different one;
//! * **artifacts absent or fully intact** — a recovered `done` job serves
//!   either its byte-identical bundle or nothing, never a partial one;
//! * recovery itself is **idempotent** — a second boot reaches the same
//!   states.
//!
//! The in-process crash model: an injected fault *halts* the
//! [`wal::WalWriter`], freezing the file exactly as a killed process
//! would, and the script stops at the first halt (a dead process executes
//! nothing further). Recovery then reopens the directory cold.

use crate::failpoint::{self, Action};
use crate::persist::{Persistence, RecoveredJob};
use crate::queue::Bounded;
use crate::store::{JobState, JobStore};
use crate::worker::{self, QueuedJob};
use confmask::{ArtifactFile, DegradationReport, JobOutcome, JobSummary, Params};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "confmask-sweep-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn outcome() -> JobOutcome {
    JobOutcome {
        artifacts: vec![
            ArtifactFile {
                path: "routers/r1.cfg".into(),
                text: "hostname r1\ninterface eth0\n  ip address 10.0.0.1/24\n".into(),
            },
            ArtifactFile {
                path: "hosts/h1.cfg".into(),
                text: "hostname h1\n".into(),
            },
        ],
        summary: JobSummary {
            routers: 1,
            hosts: 1,
            fake_links: 2,
            fake_hosts: 0,
            fake_routers: 0,
            config_utility: 0.5,
            route_anonymity_avg: 2.0,
            functionally_equivalent: true,
        },
        degradation: DegradationReport { attempts: vec![] },
    }
}

fn sorted_artifacts() -> Vec<ArtifactFile> {
    let mut files = outcome().artifacts;
    files.sort_by(|a, b| a.path.cmp(&b.path));
    files
}

/// The scripted workload: one job that completes with artifacts, one that
/// fails, one left queued, one left running. Stops at the first injected
/// halt (a dead process executes nothing further). Returns the jobs the
/// "client" saw acknowledged, with their final in-memory states, plus the
/// number of WAL appends that reached the disk.
fn scripted(dir: &Path, snapshot_every: u64) -> (Vec<(u64, JobState)>, u64) {
    let (p, r) = Persistence::open(dir, snapshot_every, 3).expect("open state dir");
    let persist = Arc::new(p);
    let store = JobStore::durable(Arc::clone(&persist), &r);
    let mut acked: Vec<u64> = Vec::new();
    'script: {
        // A: runs to completion with artifacts.
        if let Ok(a) = store.create_job(0xA, "job-a".into(), None, None) {
            acked.push(a);
            if !persist.halted() {
                store.mark_running(a);
            }
            if !persist.halted() {
                store.finish(a, Ok(outcome()));
            }
        }
        if persist.halted() {
            break 'script;
        }
        // B: runs and fails.
        if let Ok(b) = store.create_job(0xB, "job-b".into(), None, None) {
            acked.push(b);
            if !persist.halted() {
                store.mark_running(b);
            }
            if !persist.halted() {
                store.finish(b, Err("boom".into()));
            }
        }
        if persist.halted() {
            break 'script;
        }
        // C: accepted, still waiting in the queue at the crash.
        if let Ok(c) = store.create_job(0xC, "job-c".into(), None, None) {
            acked.push(c);
        }
        if persist.halted() {
            break 'script;
        }
        // D: a worker picked it up; the crash interrupts it.
        if let Ok(d) = store.create_job(0xD, "job-d".into(), None, None) {
            acked.push(d);
            if !persist.halted() {
                store.mark_running(d);
            }
        }
    }
    let appends = persist.appends();
    let acked = acked
        .into_iter()
        .map(|id| (id, store.get(id).expect("acked job is in memory").state))
        .collect();
    (acked, appends)
}

/// Reopens `dir` and checks every exactly-once invariant against what the
/// live run acknowledged, then boots a second time to check idempotence.
fn verify_recovery(dir: &Path, acked: &[(u64, JobState)], context: &str) {
    let (p, rec) = Persistence::open(dir, 1_000, 3).expect("recovery must succeed");
    let recovered: BTreeMap<u64, &RecoveredJob> = rec.jobs.iter().map(|j| (j.id, j)).collect();

    // No job lost, none invented: the recovered set is exactly the
    // acknowledged set.
    let acked_ids: Vec<u64> = acked.iter().map(|(id, _)| *id).collect();
    assert_eq!(
        recovered.keys().copied().collect::<Vec<u64>>(),
        acked_ids,
        "{context}: recovered ids != acknowledged ids"
    );

    let requeued: BTreeSet<u64> = rec.requeue.iter().map(|e| e.id).collect();
    for entry in &rec.requeue {
        assert!(
            entry.delay <= Duration::from_secs(5),
            "{context}: backoff over the cap: {:?}",
            entry.delay
        );
    }

    for (id, mem_state) in acked {
        let job = recovered[id];
        if job.state.is_terminal() {
            // A terminal recovery must be the completion the daemon
            // recorded — never a different outcome (exactly-once).
            assert_eq!(
                job.state, *mem_state,
                "{context}: job {id} recovered to a different terminal state"
            );
            // Artifacts are absent (`outcome: None`, e.g. the bundle
            // append was injected to fail) or fully intact — a partial
            // bundle can never surface.
            if let Some(out) = &job.outcome {
                assert_eq!(
                    out.artifacts,
                    sorted_artifacts(),
                    "{context}: job {id} artifacts not byte-identical"
                );
            }
        } else {
            // Not yet durably terminal: the job must be scheduled for
            // re-execution, with its submission intact.
            assert!(
                requeued.contains(id),
                "{context}: job {id} neither terminal nor requeued (mem: {mem_state:?})"
            );
            assert!(
                job.submission.is_some(),
                "{context}: job {id} requeued without a submission"
            );
        }
    }

    // Second boot: recovery is idempotent. The Requeued/Finished records
    // the first boot journaled must not change any terminal state or
    // multiply completions.
    drop(p);
    let (_p2, rec2) = Persistence::open(dir, 1_000, 3).expect("second recovery");
    let terminal = |r: &[RecoveredJob]| -> Vec<(u64, JobState)> {
        r.iter()
            .filter(|j| j.state.is_terminal())
            .map(|j| (j.id, j.state))
            .collect()
    };
    assert_eq!(
        terminal(&rec.jobs),
        terminal(&rec2.jobs),
        "{context}: a second boot changed terminal states"
    );
    assert_eq!(
        rec2.requeue.iter().map(|e| e.id).collect::<BTreeSet<u64>>(),
        requeued,
        "{context}: a second boot changed the requeue set"
    );
}

#[test]
fn clean_run_settles_every_job_and_sizes_the_sweep() {
    let _guard = failpoint::exclusive();
    failpoint::clear();
    let (acked, appends) = scripted(&tmp("clean"), 1_000);
    let states: Vec<JobState> = acked.iter().map(|(_, s)| *s).collect();
    assert_eq!(
        states,
        vec![JobState::Done, JobState::Failed, JobState::Queued, JobState::Running]
    );
    // 4×Created + 3×Running + A's Artifacts+Finished + B's Finished.
    assert_eq!(appends, 10, "the scripted workload drifted; re-derive the sweep size");
}

#[test]
fn crash_sweep_over_every_wal_append() {
    let _guard = failpoint::exclusive();
    failpoint::clear();
    let (_, total) = scripted(&tmp("size"), 1_000);
    for hit in 1..=total {
        for action in [
            Action::CrashBefore,
            Action::Torn,
            Action::CrashAfter,
            Action::IoError,
            Action::DiskFull,
        ] {
            let dir = tmp(&format!("wal-{hit}-{action:?}"));
            failpoint::arm("wal.append", action, hit);
            let (acked, _) = scripted(&dir, 1_000);
            failpoint::clear();
            verify_recovery(&dir, &acked, &format!("wal.append {action:?}@{hit}"));
        }
    }
}

#[test]
fn crash_sweep_over_every_snapshot_step() {
    let _guard = failpoint::exclusive();
    failpoint::clear();
    // snapshot_every=1: both finishes in the script trigger a snapshot.
    for site in ["snapshot.write", "snapshot.rename", "snapshot.truncate"] {
        for hit in 1..=2u64 {
            for action in [Action::CrashBefore, Action::IoError] {
                let dir = tmp(&format!("{site}-{hit}-{action:?}"));
                failpoint::arm(site, action, hit);
                let (acked, _) = scripted(&dir, 1);
                failpoint::clear();
                verify_recovery(&dir, &acked, &format!("{site} {action:?}@{hit}"));
            }
        }
    }
}

#[test]
fn a_vanished_worker_leaves_an_interrupted_job_that_recovery_requeues() {
    let _guard = failpoint::exclusive();
    failpoint::clear();
    let dir = tmp("vanish");
    let (p, r) = Persistence::open(&dir, 1_000, 3).unwrap();
    let store = Arc::new(JobStore::durable(Arc::new(p), &r));
    let id = store.create_job(7, "net".into(), None, None).unwrap();
    failpoint::arm("worker.run", Action::Vanish, 1);
    let queue = Arc::new(Bounded::new(4));
    queue
        .push(QueuedJob::untraced(
            id,
            confmask_netgen::smallnets::example_network(),
            Params::new(3, 2),
        ))
        .unwrap();
    let pool = worker::spawn(1, Arc::clone(&queue), Arc::clone(&store), None);
    queue.close();
    pool.join();
    failpoint::clear();
    // The worker died mid-job: running in memory, no outcome recorded.
    assert_eq!(store.get(id).unwrap().state, JobState::Running);
    drop(store);

    let (_p, rec) = Persistence::open(&dir, 1_000, 3).unwrap();
    let j = rec.jobs.iter().find(|j| j.id == id).unwrap();
    assert_eq!(j.state, JobState::Interrupted);
    assert_eq!(j.requeues, 1);
    assert_eq!(rec.requeue.len(), 1);
    assert!(rec.requeue[0].delay > Duration::ZERO, "interruption earns backoff");
}
