//! Deterministic fault injection for the durability layer.
//!
//! A *fail point* is a named site in the I/O path (`wal.append`,
//! `snapshot.rename`, `worker.run`, …) that consults this registry on
//! every hit. Tests — and, with the `failpoints` feature, a built daemon
//! driven by the `CONFMASK_FAILPOINTS` environment variable — arm a site
//! with an [`Action`] scheduled for its *n*-th hit. The production build
//! without the feature compiles [`check`] down to a constant `None`.
//!
//! Schedule syntax (`CONFMASK_FAILPOINTS`):
//!
//! ```text
//! wal.append=torn@3;worker.run=vanish@1
//! ```
//!
//! meaning "tear the 3rd WAL append mid-record" and "make the first
//! worker vanish mid-job". Actions:
//!
//! | action    | effect at the armed hit |
//! |-----------|-------------------------|
//! | `crash`   | halt durability *before* any bytes of the operation |
//! | `torn`    | write roughly half the record's bytes, then halt |
//! | `sync`    | complete the operation (including fsync), then halt |
//! | `err`     | return `ErrorKind::Other` ("injected I/O error") |
//! | `full`    | return an injected disk-full error |
//! | `vanish`  | the worker thread dies without recording an outcome |
//!
//! "Halt" means the [`crate::wal::WalWriter`] freezes its file exactly as
//! a killed process would leave it and ignores every later operation; the
//! in-process test then reopens the state directory and must recover.
//! Hit counters are per-site and process-global, so tests that arm fail
//! points serialize on [`exclusive`].

/// What an armed fail point does when its scheduled hit arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Halt durability before the operation writes anything.
    CrashBefore,
    /// Write a partial record (a torn write), then halt.
    Torn,
    /// Complete the operation durably, then halt.
    CrashAfter,
    /// Fail the operation with an injected `ErrorKind::Other`.
    IoError,
    /// Fail the operation with an injected disk-full error.
    DiskFull,
    /// The worker thread dies mid-job without recording an outcome.
    Vanish,
}

impl Action {
    /// Parses the schedule-syntax name.
    pub fn from_name(name: &str) -> Option<Action> {
        Some(match name {
            "crash" => Action::CrashBefore,
            "torn" => Action::Torn,
            "sync" => Action::CrashAfter,
            "err" => Action::IoError,
            "full" => Action::DiskFull,
            "vanish" => Action::Vanish,
            _ => return None,
        })
    }
}

/// The injected error for [`Action::IoError`] / [`Action::DiskFull`].
pub fn injected_error(action: Action) -> std::io::Error {
    let message = match action {
        Action::DiskFull => "injected disk full",
        _ => "injected I/O error",
    };
    std::io::Error::other(message)
}

#[cfg(any(test, feature = "failpoints"))]
mod registry {
    use super::Action;
    use std::collections::HashMap;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    struct Site {
        action: Action,
        /// Fire on this 1-based hit.
        at_hit: u64,
        hits: u64,
    }

    fn sites() -> &'static Mutex<HashMap<String, Site>> {
        static SITES: OnceLock<Mutex<HashMap<String, Site>>> = OnceLock::new();
        SITES.get_or_init(|| Mutex::new(HashMap::new()))
    }

    fn lock() -> MutexGuard<'static, HashMap<String, Site>> {
        sites().lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Arms `site` to perform `action` on its `at_hit`-th hit (1-based).
    pub fn arm(site: &str, action: Action, at_hit: u64) {
        lock().insert(
            site.to_string(),
            Site {
                action,
                at_hit: at_hit.max(1),
                hits: 0,
            },
        );
    }

    /// Disarms every site and resets all hit counters.
    pub fn clear() {
        lock().clear();
    }

    /// Counts a hit of `site`, returning the scheduled action if this is
    /// the armed one.
    pub fn check(site: &str) -> Option<Action> {
        let mut sites = lock();
        let entry = sites.get_mut(site)?;
        entry.hits += 1;
        (entry.hits == entry.at_hit).then_some(entry.action)
    }

    /// Arms sites from a `CONFMASK_FAILPOINTS` schedule string. Unknown
    /// or malformed entries are reported, not panicked on — a daemon must
    /// not die because of a typo in a test knob.
    pub fn load_schedule(schedule: &str) {
        for entry in schedule.split(';').filter(|e| !e.trim().is_empty()) {
            let parsed = (|| {
                let (site, spec) = entry.split_once('=')?;
                let (action, at_hit) = match spec.split_once('@') {
                    Some((action, n)) => (action, n.parse().ok()?),
                    None => (spec, 1),
                };
                Some((site.trim().to_string(), Action::from_name(action.trim())?, at_hit))
            })();
            match parsed {
                Some((site, action, at_hit)) => arm(&site, action, at_hit),
                None => confmask_obs::warn!(
                    "serve.failpoint",
                    "ignoring malformed failpoint entry '{entry}'"
                ),
            }
        }
    }

    /// Serializes tests that arm fail points (the registry and its hit
    /// counters are process-global).
    pub fn exclusive() -> MutexGuard<'static, ()> {
        static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
        GUARD
            .get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(any(test, feature = "failpoints"))]
pub use registry::{arm, check, clear, exclusive, load_schedule};

/// Counts a hit of `site` (no-op: fail points are compiled out).
#[cfg(not(any(test, feature = "failpoints")))]
#[inline(always)]
pub fn check(_site: &str) -> Option<Action> {
    None
}

/// Loads a schedule (no-op: fail points are compiled out).
#[cfg(not(any(test, feature = "failpoints")))]
#[inline(always)]
pub fn load_schedule(_schedule: &str) {}

/// Arms fail points from the `CONFMASK_FAILPOINTS` environment variable,
/// if set. Called once at daemon startup; inert without the `failpoints`
/// feature (or outside `cfg(test)`).
pub fn load_env() {
    if let Ok(schedule) = std::env::var("CONFMASK_FAILPOINTS") {
        load_schedule(&schedule);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_exactly_on_the_scheduled_hit() {
        let _guard = exclusive();
        clear();
        arm("t.site", Action::Torn, 3);
        assert_eq!(check("t.site"), None);
        assert_eq!(check("t.site"), None);
        assert_eq!(check("t.site"), Some(Action::Torn));
        assert_eq!(check("t.site"), None, "fires once, not repeatedly");
        assert_eq!(check("t.other"), None, "unarmed sites never fire");
        clear();
        assert_eq!(check("t.site"), None, "clear disarms");
    }

    #[test]
    fn schedule_string_round_trips_and_tolerates_garbage() {
        let _guard = exclusive();
        clear();
        load_schedule("t.a=crash@2; t.b=vanish ;;bogus;t.c=what@1;t.d=err@x");
        assert_eq!(check("t.a"), None);
        assert_eq!(check("t.a"), Some(Action::CrashBefore));
        assert_eq!(check("t.b"), Some(Action::Vanish), "@1 is the default");
        assert_eq!(check("t.c"), None, "unknown action ignored");
        assert_eq!(check("t.d"), None, "bad hit count ignored");
        clear();
    }

    #[test]
    fn action_names_parse() {
        for (name, action) in [
            ("crash", Action::CrashBefore),
            ("torn", Action::Torn),
            ("sync", Action::CrashAfter),
            ("err", Action::IoError),
            ("full", Action::DiskFull),
            ("vanish", Action::Vanish),
        ] {
            assert_eq!(Action::from_name(name), Some(action));
        }
        assert_eq!(Action::from_name("explode"), None);
    }
}
